"""Parallel experiment-execution engine: supervision, cache, checkpoints.

Every paper figure is a bag of *independent* simulation jobs (one
benchmark, one REF seed, every width -- see :func:`.harness.run_seed`).
The engine fans those jobs out over a :class:`ProcessPoolExecutor`,
reassembles the results deterministically (order is fixed by submission
index, never completion time), and memoises each job on disk so that
re-running a figure after touching only a report renderer is instant.

* Worker count comes from the ``REPRO_JOBS`` environment variable, the
  CLI ``--jobs`` flag, or ``os.cpu_count()``; ``jobs=1`` is the serial
  path and runs every job in-process with no executor.
* The cache key is a SHA-256 over the worker's qualified name, a stable
  fingerprint of the job payload (benchmark, seed, widths, and every
  ``RunConfig``/``MachineConfig``/``SelectionConfig``/``TransformConfig``
  field), the source hash of the whole ``repro`` package, and a schema
  version -- touching any simulator/compiler source invalidates the
  whole cache; touching a renderer invalidates nothing.  Entries that
  fail validation on read (wrong schema, truncated JSON, missing
  ``result``) count as misses and are moved to
  ``results/.cache/quarantine/`` for inspection.
* **Supervision**: a worker that raises records a structured failure
  (status ``failed`` + traceback) instead of aborting the run; a worker
  process that dies (``BrokenProcessPool``, e.g. an OOM kill) is an
  infrastructure fault and is retried with exponential backoff + jitter
  (``REPRO_RETRIES``, default 2); a job that exceeds the per-job
  timeout (``REPRO_JOB_TIMEOUT`` / ``--job-timeout``) is detected by a
  watchdog that kills and respawns the pool, resubmitting innocent
  in-flight jobs at no attempt cost.  Deterministic worker exceptions
  are never retried -- they would fail identically again.
* **Checkpoint/resume**: when the engine has a ``run_id``, every
  finished job (success or final failure) is appended to a run journal
  (``results/.cache/runs/<run-id>.jsonl``) the moment it completes;
  constructing the engine with ``resume=True`` replays the journal's
  successes so only unfinished/failed jobs re-run.
* Observability: per-job wall time and simulated-cycle counters, a
  ``progress(done, total, label)`` callback, and a machine-readable
  manifest (:meth:`ExperimentEngine.write_manifest`) recording config,
  timings, per-job status/attempts/error, and cache hit/miss counts.
* **Warm-worker plane**: on the parallel path the engine exports a
  run-scoped shared-memory prefix so workers publish decoded traces
  once per machine (:mod:`.plane`) and map them zero-copy thereafter;
  follower sweep points of one artifact group are *fused into batches*
  (:func:`_run_job_batch`) so one worker submission loads/maps the
  trace once and reuses the layered replay prep across every point.
  Each batch point spools its envelope to disk the moment it finishes,
  so a crash mid-batch retries only the unfinished remainder and
  ``--resume`` replays completed points from the journal individually
  -- per-point isolation, caching, and journalling are unchanged.
* Fault injection: see :mod:`.faults` (``REPRO_FAULT_INJECT``) for the
  deterministic harness that exercises all of the above in tests.

Environment knobs: ``REPRO_JOBS`` (worker count), ``REPRO_CACHE=0``
(disable the cache), ``REPRO_CACHE_DIR`` (relocate it from the default
``results/.cache/``), ``REPRO_RETRIES`` (infrastructure-fault retries,
default 2), ``REPRO_JOB_TIMEOUT`` (per-job seconds, 0 = off),
``REPRO_RETRY_BACKOFF`` (base backoff seconds, default 0.5),
``REPRO_FAULT_INJECT`` (fault plan), ``REPRO_SHM=0`` (disable the
shared-memory trace plane), ``REPRO_BATCH`` (0 = per-job dispatch,
1 = fuse each whole artifact group, N>1 = cap fused batches at N
points; default 1), ``REPRO_BACKEND`` (``local`` = supervised pool,
``queue`` = lease-based multi-worker work queue -- see
:mod:`.backends`, which also reads ``REPRO_QUEUE_WORKERS``/
``REPRO_LEASE_TTL``/``REPRO_QUEUE_POLL``/``REPRO_QUEUE_GRACE_S``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import random
import secrets
import tempfile
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
)

from . import backends as backends_mod
from . import faults, plane
from .store import quarantine_file

#: Bump when the cached-result layout changes.
CACHE_SCHEMA = 1

#: Manifest layout version (see EXPERIMENTS.md for the schema).
#: v2 adds committed-instruction counts and simulated-KIPS per job and in
#: the totals; v3 adds per-job status (ok/failed/timeout/skipped),
#: attempt counts, failure tracebacks, and the run id / robustness knobs;
#: v4 adds per-job and total artifact counters (trace capture/replay,
#: shared profile and compile hits -- see :mod:`.artifacts`); v5 adds
#: batch accounting (``batches``/``batch_points``), shared-memory plane
#: counters, per-job ``worker_pid``/``batched``, and a per-worker
#: artifact-counter breakdown (``workers``); v6 adds the execution
#: backend block (``backend``: requested backend, degradations,
#: lease/heartbeat/failover counters, per-queue-worker health records
#: -- see :mod:`.backends`); v7 adds the persisted replay-prep slice
#: counters to the per-job/total artifact blocks (``prep_hits``/
#: ``prep_misses``/``prep_builds``/``prep_quarantined`` plus
#: ``shm_prep_publishes``/``shm_prep_attaches`` -- see
#: :mod:`.artifacts`): a warm fleet shows exactly one ``prep_builds``
#: per (trace, predictor, config class) and hits everywhere else;
#: v8 adds the sweep-fused replay counters to the per-job/total
#: artifact blocks (``fused_passes``/``fused_points``/
#: ``fused_fallbacks``/``fused_diverges`` -- see
#: :meth:`.artifacts.ArtifactStore.simulate_inorder_sweep`) plus
#: top-level ``totals.fused_passes``/``totals.fused_points``
#: mirrors: a fused width sweep shows one ``fused_passes`` per
#: (trace, prep slice) group covering K ``fused_points``, and any
#: nonzero ``fused_diverges`` records a detected lane divergence
#: that degraded to (bit-identical) per-point replay.
MANIFEST_SCHEMA = 8

#: Repo-level results directory (works for the src-layout checkout).
RESULTS_DIR = pathlib.Path(__file__).resolve().parents[3] / "results"

_CODE_VERSION: Optional[str] = None


def code_version() -> str:
    """Hash of every ``repro`` source file; part of every cache key."""
    global _CODE_VERSION
    if _CODE_VERSION is None:
        package_root = pathlib.Path(__file__).resolve().parents[1]
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(path.read_bytes())
        _CODE_VERSION = digest.hexdigest()[:16]
    return _CODE_VERSION


def fingerprint(obj: Any) -> Any:
    """Reduce ``obj`` to a stable, JSON-serialisable structure.

    Dataclasses flatten to their field dict (tagged with the class name),
    callables/classes to their qualified name, so two configs fingerprint
    equal exactly when every field is equal.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: fingerprint(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        return {"__class__": type(obj).__qualname__, **fields}
    if isinstance(obj, dict):
        return {str(k): fingerprint(v) for k, v in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [fingerprint(v) for v in obj]
    if isinstance(obj, pathlib.Path):
        return str(obj)
    if callable(obj):
        return f"{obj.__module__}.{obj.__qualname__}"
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(f"cannot fingerprint {type(obj).__name__}: {obj!r}")


#: Number of cumulative-time entries kept per profiled job.
PROFILE_TOP = 20


def _env_profile_enabled() -> bool:
    return os.environ.get("REPRO_PROFILE", "").strip().lower() in (
        "1", "true", "yes", "on",
    )


def _profile_text(profiler) -> str:
    """Top-N cumulative entries of a cProfile run, as plain text."""
    import io
    import pstats

    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(PROFILE_TOP)
    return buffer.getvalue()


def _error_dict(exc: BaseException, trace: Optional[str] = None) -> Dict:
    """Structured failure record for manifests and journals."""
    if trace is None:
        trace = "".join(
            traceback.format_exception_only(type(exc), exc)
        ).strip()
    return {
        "type": type(exc).__name__,
        "message": str(exc),
        "traceback": trace,
    }


def _run_timed(
    worker: Callable[[Any], Dict],
    payload: Any,
    label: str = "",
    attempt: int = 0,
    in_process: bool = False,
) -> Dict:
    """Top-level so it pickles; returns a status envelope.

    ``{"status": "ok", "result": ..., "wall_s": ..., "profile": ...}``
    on success, ``{"status": "failed", "wall_s": ..., "error": {...}}``
    when the worker raises -- exceptions are captured *inside* the
    worker process so the full traceback survives the trip back and a
    deterministic failure can be told apart from infrastructure faults
    (which surface as ``BrokenProcessPool``/timeouts instead).

    Profiling is keyed off the ``REPRO_PROFILE`` environment variable
    (not an argument) so the switch survives the trip into
    ``ProcessPoolExecutor`` workers; fault injection
    (``REPRO_FAULT_INJECT``) rides the environment the same way.

    Every envelope additionally carries ``worker_pid`` and the
    *worker-process* artifact-counter movement (``artifacts``) for the
    job.  The counters have to travel in the envelope: the store that
    did the work lives in the pool worker, and its counters would
    otherwise be lost when results cross back to the parent (manifest
    totals used to reflect the parent process only).
    """
    start = time.perf_counter()
    profile = None
    mark = None
    store = None
    try:
        from .artifacts import default_store

        store = default_store()
        mark = store.mark()
    except Exception:
        store = None
    try:
        faults.inject_worker_faults(label, attempt, in_process=in_process)
        if _env_profile_enabled():
            import cProfile

            profiler = cProfile.Profile()
            result = profiler.runcall(worker, payload)
            profile = _profile_text(profiler)
        else:
            result = worker(payload)
    except Exception as exc:
        return {
            "status": "failed",
            "wall_s": time.perf_counter() - start,
            "error": _error_dict(exc, trace=traceback.format_exc()),
            "artifacts": store.delta(mark) if store is not None else None,
            "worker_pid": os.getpid(),
        }
    return {
        "status": "ok",
        "result": result,
        "wall_s": time.perf_counter() - start,
        "profile": profile,
        "artifacts": store.delta(mark) if store is not None else None,
        "worker_pid": os.getpid(),
    }


def _run_job_batch(
    worker: Callable[[Any], Dict],
    items: Sequence[tuple],
    attempt: int,
    spool_path: str,
) -> Dict:
    """Run a fused batch of sweep points in one worker submission.

    ``items`` is ``[(payload, label), ...]`` -- every point of one
    artifact group, so the first point's trace load warms the
    worker-resident store (or maps the shared-memory segment) and every
    later point replays from it, layered prep included.  Points run
    through :func:`_run_timed` individually: one point raising never
    takes down its batch-mates.

    Each envelope is appended (and flushed) to ``spool_path`` *before*
    the next point starts.  If the worker dies mid-batch the parent
    reads the spool, absorbs the completed prefix, and requeues only
    the remainder -- the crash-retry granularity stays per-point, as in
    the unbatched engine.  The ``batch_die`` fault kind injects exactly
    that death, between points, deterministically.
    """
    envelopes: List[Dict] = []
    with open(spool_path, "w") as spool:
        for payload, label in items:
            if faults.should_batch_die(label, attempt):
                os._exit(faults.DIE_EXIT_STATUS)
            envelope = _run_timed(worker, payload, label, attempt)
            envelopes.append(envelope)
            spool.write(json.dumps(envelope) + "\n")
            spool.flush()
            # fsync: the spool is read back after this process is
            # SIGKILLed -- a page-cache-only tail would replay short.
            os.fsync(spool.fileno())
    return {"status": "batch", "envelopes": envelopes}


def _pool_worker_init(env: Dict[str, str]) -> None:
    """Pool initializer: pin the artifact environment in the worker and
    build the worker-resident store before the first job arrives.

    The store (and everything it memoises) lives for the worker's whole
    lifetime, across batches; after a watchdog kill-and-respawn the
    fresh workers run this again and transparently repopulate -- their
    first trace load maps the shared-memory segment a previous
    incarnation published instead of re-inflating from disk.
    """
    for name, value in env.items():
        if value:
            os.environ[name] = value
        else:
            os.environ.pop(name, None)
    try:
        from .artifacts import default_store

        default_store()
    except Exception:
        pass


def _seed_worker(payload) -> Dict:
    """One (benchmark, REF seed) simulation job (see harness.run_seed)."""
    from .harness import run_seed

    name, seed, config = payload
    return run_seed(name, seed, config)


def _env_jobs() -> int:
    raw = os.environ.get("REPRO_JOBS", "").strip()
    if raw:
        return max(1, int(raw))
    return os.cpu_count() or 1


def _env_cache_enabled() -> bool:
    return os.environ.get("REPRO_CACHE", "1").strip().lower() not in (
        "0", "false", "no", "off",
    )


def _env_retries() -> int:
    raw = os.environ.get("REPRO_RETRIES", "").strip()
    return max(0, int(raw)) if raw else 2


def _env_job_timeout() -> Optional[float]:
    raw = os.environ.get("REPRO_JOB_TIMEOUT", "").strip()
    if not raw:
        return None
    value = float(raw)
    return value if value > 0 else None


def _env_retry_backoff() -> float:
    raw = os.environ.get("REPRO_RETRY_BACKOFF", "").strip()
    return max(0.0, float(raw)) if raw else 0.5


def _env_batch() -> int:
    """``REPRO_BATCH``: 0 = per-job dispatch (no fusing), 1 = fuse each
    whole artifact group into one submission (default), N>1 = cap fused
    batches at N points."""
    raw = os.environ.get("REPRO_BATCH", "").strip()
    if not raw:
        return 1
    try:
        return max(0, int(raw))
    except ValueError:
        return 1


def _fuse(members: Sequence[int], cap: int) -> List[tuple]:
    """Chunk a released follower group into batch id-tuples."""
    if cap == 0:
        return [(i,) for i in members]
    if cap == 1:
        return [tuple(members)]
    return [
        tuple(members[j : j + cap]) for j in range(0, len(members), cap)
    ]


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Terminate a pool's workers and abandon it without waiting.

    ``ProcessPoolExecutor`` has no public kill switch, so the watchdog
    reaches for the worker ``Process`` handles directly; the management
    thread notices the deaths and winds itself down.
    """
    processes = getattr(pool, "_processes", None) or {}
    for proc in list(processes.values()):
        try:
            proc.terminate()
        except Exception:
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass


class _JobState:
    """Mutable per-payload bookkeeping for one :meth:`map` call."""

    __slots__ = (
        "result", "wall_s", "source", "profile", "status", "error",
        "attempts", "artifacts", "worker_pid", "batched",
    )

    def __init__(self) -> None:
        self.result: Optional[Dict] = None
        self.wall_s = 0.0
        #: "hit" (cache), "journal" (resume replay), or "miss" (executed).
        self.source = "miss"
        self.profile: Optional[str] = None
        #: "pending" -> "ok" | "failed" | "timeout" | "skipped".
        self.status = "pending"
        self.error: Optional[Dict] = None
        self.attempts = 0
        #: Worker-process artifact-counter movement (from the envelope).
        self.artifacts: Optional[Dict] = None
        self.worker_pid: Optional[int] = None
        #: Ran as part of a fused batch submission.
        self.batched = False


class ExperimentEngine:
    """Schedules experiment jobs over processes, with an on-disk cache,
    per-job fault isolation, retries, and a checkpoint journal."""

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache_dir: Optional[pathlib.Path] = None,
        use_cache: Optional[bool] = None,
        progress: Optional[Callable[[int, int, str], None]] = None,
        run_id: Optional[str] = None,
        resume: bool = False,
        job_timeout: Optional[float] = None,
        retries: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> None:
        self.jobs = max(1, jobs) if jobs is not None else _env_jobs()
        if cache_dir is not None:
            self.cache_dir = pathlib.Path(cache_dir)
        else:
            self.cache_dir = pathlib.Path(
                os.environ.get("REPRO_CACHE_DIR", "")
                or RESULTS_DIR / ".cache"
            )
        self.use_cache = (
            use_cache if use_cache is not None else _env_cache_enabled()
        )
        self.progress = progress
        #: Journal identity; ``None`` disables journalling entirely.
        self.run_id = run_id
        self.resume = resume
        self.job_timeout = (
            job_timeout if job_timeout is not None else _env_job_timeout()
        )
        self.retries = retries if retries is not None else _env_retries()
        self.retry_backoff = _env_retry_backoff()
        #: Execution backend (``local``/``queue``, see :mod:`.backends`).
        if backend is not None and backend not in backends_mod.BACKEND_NAMES:
            raise ValueError(
                f"backend={backend!r}; expected one of "
                f"{backends_mod.BACKEND_NAMES}"
            )
        self.backend = (
            backend if backend is not None else backends_mod.env_backend()
        )
        #: When set (the CLI does), a partial manifest is written here if
        #: a run is interrupted mid-:meth:`map`.
        self.manifest_path: Optional[pathlib.Path] = None
        self._journal_handle = None
        self._journal_replay: Dict[str, Dict] = (
            self._load_journal() if (resume and run_id) else {}
        )
        self._rng = random.Random()  # backoff jitter only
        self.reset_stats()

    @staticmethod
    def new_run_id() -> str:
        """Fresh journal identity, e.g. ``20260806-104512-3fa9c1``."""
        return time.strftime("%Y%m%d-%H%M%S") + "-" + secrets.token_hex(3)

    # -- observability -----------------------------------------------------

    def reset_stats(self) -> None:
        self.cache_hits = 0
        self.cache_misses = 0
        self.journal_hits = 0
        self.cache_quarantined = 0
        #: Fused batch submissions absorbed (full or spool-recovered).
        self.batches = 0
        #: Sweep points that ran inside fused batches.
        self.batch_points = 0
        #: Shared-memory segments unlinked at run end.
        self.shm_segments_cleaned = 0
        #: Times a queue run degraded to the local backend mid-map.
        self.backend_degraded = 0
        #: Lease/heartbeat/failover counters summed over every backend
        #: this engine drove (see :meth:`Backend.health`).
        self.backend_totals: Dict[str, int] = {}
        #: Per-queue-worker health records (latest heartbeat wins).
        self.backend_workers: Dict[str, Dict] = {}
        #: Prefix of the most recent parallel map's shm segments (kept
        #: after cleanup so tests can assert the namespace is empty).
        self.last_shm_prefix: Optional[str] = None
        #: One record per executed/looked-up job, in submission order.
        self.records: List[Dict] = []
        #: Records of the most recent :meth:`map` call, payload-aligned.
        self._last_records: List[Dict] = []
        #: (label, text) per profiled job (``REPRO_PROFILE=1`` runs only).
        self.profiles: List[tuple] = []

    @property
    def total_wall_s(self) -> float:
        return sum(r["wall_s"] for r in self.records)

    @property
    def total_simulated_cycles(self) -> int:
        return sum(r["simulated_cycles"] for r in self.records)

    @property
    def total_committed_instructions(self) -> int:
        return sum(r["committed_instructions"] for r in self.records)

    @property
    def total_sim_kips(self) -> float:
        """Simulated-KIPS over every recorded job: committed (simulated)
        instructions per wall-clock millisecond of job time."""
        wall = self.total_wall_s
        if wall <= 0:
            return 0.0
        return self.total_committed_instructions / wall / 1000.0

    def artifact_totals(self) -> Dict[str, int]:
        """Sum of per-job artifact counters (see :mod:`.artifacts`).

        Only jobs that actually executed this run contribute
        (cache/journal hits record ``artifacts: null``), so the totals
        describe the artifact work *this* run performed.
        """
        totals: Dict[str, int] = {}
        for record in self.records:
            for name, value in (record.get("artifacts") or {}).items():
                totals[name] = totals.get(name, 0) + value
        return totals

    def worker_totals(self) -> Dict[str, Dict[str, int]]:
        """Artifact-counter movement per worker process.

        Keyed by pid (as a string, for JSON); each bucket carries the
        job count plus the summed counters of every job that executed
        in that worker this run.  Shows at a glance how warm each
        worker ran -- e.g. one worker publishing a trace
        (``shm_publishes``) and its siblings mapping it
        (``shm_attaches``).
        """
        per: Dict[str, Dict[str, int]] = {}
        for record in self.records:
            pid = record.get("worker_pid")
            if pid is None:
                continue
            bucket = per.setdefault(str(pid), {"jobs": 0})
            bucket["jobs"] += 1
            for name, value in (record.get("artifacts") or {}).items():
                bucket[name] = bucket.get(name, 0) + value
        return per

    @property
    def failures(self) -> List[Dict]:
        """Records that ended in ``failed``/``timeout`` (not skipped)."""
        return [
            r for r in self.records if r["status"] in ("failed", "timeout")
        ]

    def status_counts(self) -> Dict[str, int]:
        counts = {"ok": 0, "failed": 0, "timeout": 0, "skipped": 0}
        for record in self.records:
            counts[record.get("status", "ok")] = (
                counts.get(record.get("status", "ok"), 0) + 1
            )
        return counts

    def manifest(self, config: Any = None) -> Dict:
        """Machine-readable run record (see EXPERIMENTS.md for schema)."""
        try:
            plan = faults.plan_from_env()
        except ValueError:
            plan = None
        counts = self.status_counts()
        artifact_totals = self.artifact_totals()
        out = {
            "schema": MANIFEST_SCHEMA,
            "written_unix": time.time(),
            "engine": {
                "jobs": self.jobs,
                "cache_dir": str(self.cache_dir),
                "cache_enabled": self.use_cache,
                "code_version": code_version(),
                "run_id": self.run_id,
                "resume": self.resume,
                "retries": self.retries,
                "job_timeout_s": self.job_timeout,
                "fault_inject": plan.spec() if plan else None,
                "backend": self.backend,
            },
            "backend": {
                "name": self.backend,
                "degraded": self.backend_degraded,
                "totals": self.backend_totals,
                "workers": self.backend_workers,
            },
            "totals": {
                "jobs": len(self.records),
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "journal_hits": self.journal_hits,
                "quarantined": self.cache_quarantined,
                "artifacts": artifact_totals,
                "batches": self.batches,
                "batch_points": self.batch_points,
                "fused_passes": artifact_totals.get("fused_passes", 0),
                "fused_points": artifact_totals.get("fused_points", 0),
                "shm_segments_cleaned": self.shm_segments_cleaned,
                "ok": counts["ok"],
                "failed": counts["failed"],
                "timeout": counts["timeout"],
                "skipped": counts["skipped"],
                "retries_used": sum(
                    max(0, r.get("attempts", 1) - 1) for r in self.records
                ),
                "wall_s": self.total_wall_s,
                "simulated_cycles": self.total_simulated_cycles,
                "committed_instructions":
                    self.total_committed_instructions,
                "sim_kips": self.total_sim_kips,
            },
            "workers": self.worker_totals(),
            "jobs": self.records,
        }
        if config is not None:
            out["config"] = fingerprint(config)
        return out

    def write_manifest(self, path: pathlib.Path, config: Any = None) -> None:
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.manifest(config), indent=2) + "\n")
        if self.profiles:
            self.write_profiles(path.with_suffix(".profile.txt"))

    def write_profiles(self, path: pathlib.Path) -> None:
        """Write the per-job cProfile summaries gathered under
        ``REPRO_PROFILE=1`` (one top-20-cumulative section per job)."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        sections = [
            f"==== {label} ====\n{text.strip()}\n"
            for label, text in self.profiles
        ]
        path.write_text("\n".join(sections))

    # -- cache -------------------------------------------------------------

    def _cache_key(self, worker: Callable, payload: Any) -> str:
        blob = json.dumps(
            {
                "schema": CACHE_SCHEMA,
                "worker": f"{worker.__module__}.{worker.__qualname__}",
                "payload": fingerprint(payload),
                "code": code_version(),
            },
            sort_keys=True,
        )
        return hashlib.sha256(blob.encode()).hexdigest()

    def _quarantine(self, path: pathlib.Path) -> None:
        """Move an unreadable/stale cache entry aside for inspection."""
        if quarantine_file(self.cache_dir / "quarantine", path) is None:
            return
        self.cache_quarantined += 1

    def _cache_load(self, key: Optional[str]) -> Optional[Dict]:
        """Validated cache read: a missing file is a plain miss; an entry
        that is not valid JSON, carries the wrong schema, or lacks a dict
        ``result`` is quarantined and counts as a miss (it used to raise
        ``KeyError`` mid-run)."""
        if key is None or not self.use_cache:
            return None
        path = self.cache_dir / f"{key}.json"
        try:
            raw = path.read_text()
        except OSError:
            return None
        try:
            entry = json.loads(raw)
        except ValueError:
            self._quarantine(path)
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("schema") != CACHE_SCHEMA
            or not isinstance(entry.get("result"), dict)
        ):
            self._quarantine(path)
            return None
        return entry

    def _cache_store(
        self, key: Optional[str], label: str, result: Dict, wall_s: float
    ) -> None:
        if key is None or not self.use_cache:
            return
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {
                "schema": CACHE_SCHEMA,
                "label": label,
                "wall_s": wall_s,
                "result": result,
            }
        )
        if faults.should_corrupt_cache(label):
            payload = payload[: max(1, len(payload) // 2)]
        fd, tmp = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
                handle.flush()
                # fsync before the rename: without it a power loss can
                # leave the durable name over torn page-cache contents.
                os.fsync(handle.fileno())
            os.replace(tmp, self.cache_dir / f"{key}.json")
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    # -- run journal (checkpoint/resume) -----------------------------------

    def journal_path(self) -> Optional[pathlib.Path]:
        if self.run_id is None:
            return None
        return self.cache_dir / "runs" / f"{self.run_id}.jsonl"

    def _load_journal(self) -> Dict[str, Dict]:
        """Successful entries of an earlier run, keyed by cache key.

        Tolerates a torn final line (the previous run may have died
        mid-append); later entries for the same key win.
        """
        path = self.journal_path()
        replay: Dict[str, Dict] = {}
        if path is None or not path.exists():
            return replay
        for line in path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                continue
            if not isinstance(entry, dict) or "key" not in entry:
                continue
            if entry.get("status") == "ok" and isinstance(
                entry.get("result"), dict
            ):
                replay[entry["key"]] = entry
            else:
                replay.pop(entry.get("key"), None)
        return replay

    def _journal_append(self, entry: Dict) -> None:
        path = self.journal_path()
        if path is None:
            return
        if self._journal_handle is None:
            path.parent.mkdir(parents=True, exist_ok=True)
            self._journal_handle = open(path, "a")
        self._journal_handle.write(json.dumps(entry) + "\n")
        self._journal_handle.flush()
        # fsync: ``--resume`` replays this file after crashes/power
        # loss; flush alone leaves the tail in the page cache.
        os.fsync(self._journal_handle.fileno())

    def close_journal(self) -> None:
        if self._journal_handle is not None:
            try:
                self._journal_handle.close()
            finally:
                self._journal_handle = None

    # -- execution ---------------------------------------------------------

    def map(
        self,
        worker: Callable[[Any], Dict],
        payloads: Sequence[Any],
        labels: Optional[Sequence[str]] = None,
        groups: Optional[Sequence[Any]] = None,
    ) -> List[Optional[Dict]]:
        """Run ``worker`` over every payload; results in payload order.

        ``groups``, when given, is a payload-aligned sequence of
        hashable artifact-group ids: jobs in one group share
        content-addressed artifacts (traces/profiles), so the first
        pending job of each group runs as the *leader* -- it captures
        and persists the shared artifacts -- and the rest of the group
        is held back until the leader finishes, then fanned out to
        replay from the warm store.  On the parallel path released
        followers are additionally *fused* into batched submissions
        (``REPRO_BATCH``, default: one batch per group) that map the
        trace once and reuse the layered replay prep across points,
        and decoded traces travel between workers through the
        shared-memory plane (``REPRO_SHM``).  Only the parallel path
        reorders; ``jobs=1`` already runs in payload order.  Result
        order is unaffected.

        ``worker`` must be a top-level function returning a
        JSON-serialisable dict (so results can cross process boundaries
        and live in the cache).  A ``"simulated_cycles"`` key, when
        present, feeds the manifest's cycle counter.

        A job whose worker raises, whose process dies, or which exceeds
        the per-job timeout (after ``retries`` infrastructure retries)
        yields ``None`` in the returned list instead of aborting the
        whole call; the corresponding entry of :attr:`records` carries
        the status and the failure detail.  Every finished job is
        persisted to the cache and the run journal *as it completes*,
        so an interrupt or crash loses at most the jobs in flight.

        On ``KeyboardInterrupt``: pending work is cancelled, the pool
        is shut down without waiting, completed results are already on
        disk, unfinished jobs are recorded as ``skipped``, a partial
        manifest is written to :attr:`manifest_path` (when set), and
        the interrupt is re-raised.
        """
        total = len(payloads)
        if labels is None:
            labels = [f"{worker.__name__}[{i}]" for i in range(total)]
        keys = [self._cache_key(worker, p) for p in payloads]
        states = [_JobState() for _ in range(total)]
        progress_done = [0]

        # Workers resolve the artifact store (traces/profiles) through
        # REPRO_CACHE_DIR; export this engine's root for the duration of
        # the call so a test engine on a tmp cache_dir keeps its
        # artifacts there too (pool workers inherit the environment at
        # spawn, the serial path reads it directly).
        previous_root = os.environ.get("REPRO_CACHE_DIR")
        os.environ["REPRO_CACHE_DIR"] = str(self.cache_dir)
        previous_prefix = os.environ.get(plane.PREFIX_ENV)
        shm_prefix: Optional[str] = None

        def tick(i: int) -> None:
            progress_done[0] += 1
            if self.progress:
                self.progress(progress_done[0], total, labels[i])

        pending: List[int] = []
        for i in range(total):
            state = states[i]
            replayed = self._journal_replay.get(keys[i])
            if replayed is not None:
                state.result = replayed["result"]
                state.wall_s = replayed.get("wall_s", 0.0)
                state.source = "journal"
                state.status = "ok"
                tick(i)
                continue
            cached = self._cache_load(keys[i])
            if cached is not None:
                state.result = cached["result"]
                state.wall_s = cached.get("wall_s", 0.0)
                state.source = "hit"
                state.status = "ok"
                tick(i)
            else:
                pending.append(i)

        try:
            if pending and self.jobs > 1:
                if plane.shm_enabled() and plane.shm_available():
                    # Run-scoped shared-memory namespace: workers
                    # publish/attach decoded traces under this prefix
                    # for the duration of the call, and the cleanup
                    # below (which also covers KeyboardInterrupt)
                    # unlinks every segment when the run ends.
                    shm_prefix = plane.new_prefix()
                    os.environ[plane.PREFIX_ENV] = shm_prefix
                    plane.register_run(shm_prefix)
                self._run_parallel(
                    worker, payloads, labels, keys, states, pending, tick,
                    groups=groups,
                )
            elif pending:
                self._run_serial(
                    worker, payloads, labels, keys, states, pending, tick
                )
        except KeyboardInterrupt:
            self._finalise(labels, keys, states)
            if self.manifest_path is not None:
                try:
                    self.write_manifest(self.manifest_path)
                except OSError:
                    pass
            raise
        finally:
            if previous_root is None:
                os.environ.pop("REPRO_CACHE_DIR", None)
            else:
                os.environ["REPRO_CACHE_DIR"] = previous_root
            if shm_prefix is not None:
                if previous_prefix is None:
                    os.environ.pop(plane.PREFIX_ENV, None)
                else:
                    os.environ[plane.PREFIX_ENV] = previous_prefix
                self.last_shm_prefix = shm_prefix
                self.shm_segments_cleaned += plane.cleanup_run(shm_prefix)

        self._finalise(labels, keys, states)
        return [
            state.result if state.status == "ok" else None
            for state in states
        ]

    # -- completion plumbing (shared by serial + supervised paths) ---------

    def _absorb(
        self,
        i: int,
        attempt: int,
        envelope: Dict,
        labels: Sequence[str],
        keys: Sequence[str],
        states: Sequence[_JobState],
        tick: Callable[[int], None],
        batched: bool = False,
    ) -> None:
        """Fold one worker envelope into the job state; persist it."""
        state = states[i]
        state.attempts = attempt + 1
        state.wall_s = envelope.get("wall_s", 0.0)
        state.artifacts = envelope.get("artifacts")
        state.worker_pid = envelope.get("worker_pid")
        state.batched = batched
        if envelope.get("status") == "ok":
            state.result = envelope.get("result")
            state.profile = envelope.get("profile")
            state.status = "ok"
            self._cache_store(keys[i], labels[i], state.result, state.wall_s)
            self._journal_append(
                {
                    "key": keys[i],
                    "label": labels[i],
                    "status": "ok",
                    "wall_s": state.wall_s,
                    "attempts": state.attempts,
                    "result": state.result,
                    "unix": time.time(),
                }
            )
        else:
            error = envelope.get("error") or {
                "type": "InvalidEnvelope",
                "message": repr(envelope),
                "traceback": "",
            }
            # A serial-path injected hang degrades to an exception but
            # is still a timeout as far as reporting goes.
            status = (
                "timeout" if error.get("type") == "InjectedHang"
                else "failed"
            )
            self._fail(i, status, error, labels, keys, states)
        tick(i)

    def _fail(
        self,
        i: int,
        status: str,
        error: Dict,
        labels: Sequence[str],
        keys: Sequence[str],
        states: Sequence[_JobState],
    ) -> None:
        """Record a job's final failure (never cached, but journaled)."""
        state = states[i]
        state.status = status
        state.error = error
        state.attempts = max(1, state.attempts)
        self._journal_append(
            {
                "key": keys[i],
                "label": labels[i],
                "status": status,
                "wall_s": state.wall_s,
                "attempts": state.attempts,
                "error": error,
                "unix": time.time(),
            }
        )

    def _backoff_delay(self, attempt: int) -> float:
        base = self.retry_backoff
        if base <= 0:
            return 0.0
        return base * (2 ** attempt) + self._rng.uniform(0, base)

    def _run_serial(
        self, worker, payloads, labels, keys, states, pending, tick
    ) -> None:
        """The ``jobs=1`` path: in-process, no watchdog (a timeout
        cannot interrupt the main process), deterministic failures
        isolated exactly like the pool path."""
        for i in pending:
            envelope = _run_timed(
                worker, payloads[i], labels[i], 0, in_process=True
            )
            self._absorb(i, 0, envelope, labels, keys, states, tick)

    def _worker_env(self) -> Dict[str, str]:
        return {
            "REPRO_CACHE_DIR": str(self.cache_dir),
            plane.PREFIX_ENV: os.environ.get(plane.PREFIX_ENV, ""),
        }

    def _run_parallel(
        self, worker, payloads, labels, keys, states, pending, tick,
        groups=None,
    ) -> None:
        """Route the parallel path through the configured backend.

        ``queue`` drives a :class:`~.backends.QueueBackend` and, when
        it trips its circuit breaker (:class:`BackendUnavailable`: no
        live workers past the respawn budget, repeated shared-dir I/O
        errors), *degrades*: every job still pending is re-driven
        through a fresh :class:`~.backends.LocalPoolBackend` so the
        sweep completes on the local host.  ``local`` is today's
        supervised pool, unchanged.
        """
        if self.backend == "queue":
            backend = backends_mod.QueueBackend(
                self.cache_dir / "queue",
                workers=backends_mod.env_queue_workers(self.jobs),
                retries=self.retries,
                worker_env=self._worker_env(),
            )
            try:
                self._run_backend(
                    backend, worker, payloads, labels, keys, states,
                    pending, tick, groups=groups,
                )
                return
            except backends_mod.BackendUnavailable:
                self.backend_degraded += 1
                pending = [
                    i for i in pending if states[i].status == "pending"
                ]
                if not pending:
                    return
        local = backends_mod.LocalPoolBackend(
            max_workers=min(self.jobs, len(pending)),
            job_timeout=self.job_timeout,
            worker_env=self._worker_env(),
        )
        self._run_backend(
            local, worker, payloads, labels, keys, states, pending,
            tick, groups=groups,
        )

    def _merge_backend_health(self, health: Dict) -> None:
        for name, value in (health.get("counters") or {}).items():
            if isinstance(value, (int, float)):
                self.backend_totals[name] = (
                    self.backend_totals.get(name, 0) + value
                )
        self.backend_workers.update(health.get("workers") or {})

    def _run_backend(
        self, backend, worker, payloads, labels, keys, states, pending,
        tick, groups=None,
    ) -> None:
        """Generic driver: scheduling policy over a :class:`Backend`.

        Queue entries are ``(ids, attempt, not_before)`` where ``ids``
        is a tuple of payload indices: a single-element tuple is a
        plain job, a longer one a fused batch (:func:`_run_job_batch`).
        The backend turns submissions into :class:`BackendEvent`\\ s:
        ``done`` envelopes are absorbed (batch or single), ``error``
        is a deterministic failure (never retried), ``infra`` recovers
        any spooled batch points then retries the remainder with the
        attempt charged and exponential-backoff-with-jitter delay, and
        ``requeue`` (an innocent victim of a pool kill) retries
        uncharged.

        Artifact groups (see :meth:`map`): the first pending member of
        each group enters the queue as leader; the rest wait in
        ``held`` and are released the moment the leader reaches a
        terminal status (ok *or* failed -- followers of a failed
        leader still run, they just find a cold artifact store).  On
        release the group's followers are fused into batches of up to
        ``REPRO_BATCH`` points (backends may override: the queue
        backend forces per-point jobs, its unit of failover).
        """
        batch_cap = backend.batch_cap(_env_batch())
        queue: List[tuple] = []
        held: Dict[Any, List[int]] = {}
        leaders: Dict[Any, int] = {}
        for i in pending:
            group = groups[i] if groups is not None else None
            if group is None:
                queue.append(((i,), 0, 0.0))
            elif group not in leaders:
                leaders[group] = i
                queue.append(((i,), 0, 0.0))
            else:
                held.setdefault(group, []).append(i)
        outstanding: Dict[Any, tuple] = {}

        def absorb_event(event) -> None:
            meta = outstanding.pop(event.handle, None)
            if meta is None:
                return
            ids, attempt, spool = meta
            used = event.attempt if event.attempt is not None else attempt
            if event.kind == "done":
                envelope = event.envelope or {}
                if envelope.get("status") == "batch":
                    self._discard_spool(spool)
                    envelopes = envelope.get("envelopes") or []
                    for j, env in enumerate(envelopes[: len(ids)]):
                        self._absorb(
                            ids[j], used, env, labels, keys, states,
                            tick, batched=True,
                        )
                    for i in ids[len(envelopes):]:
                        states[i].attempts = attempt + 1
                        self._fail(
                            i,
                            "failed",
                            {
                                "type": "IncompleteBatch",
                                "message": "batch returned fewer "
                                "envelopes than points",
                                "traceback": "",
                            },
                            labels, keys, states,
                        )
                        tick(i)
                    self.batches += 1
                    self.batch_points += min(len(envelopes), len(ids))
                else:
                    self._discard_spool(spool)
                    self._absorb(
                        ids[0], used, envelope, labels, keys, states,
                        tick,
                    )
            elif event.kind == "error":
                # e.g. the envelope failed to unpickle: deterministic.
                self._discard_spool(spool)
                for i in ids:
                    states[i].attempts = attempt + 1
                    self._fail(
                        i, "failed", _error_dict(event.error),
                        labels, keys, states,
                    )
                    tick(i)
            elif event.kind == "infra":
                remaining = self._recover_batch(
                    ids, attempt, spool, labels, keys, states, tick
                )
                self._infra_fault(
                    queue, remaining, attempt, event.fault, event.error,
                    labels, keys, states, tick,
                )
            elif event.kind == "requeue":
                remaining = self._recover_batch(
                    ids, attempt, spool, labels, keys, states, tick
                )
                if remaining:
                    queue.append((remaining, attempt, 0.0))

        try:
            while queue or outstanding or held:
                if held:
                    for group in list(held):
                        if states[leaders[group]].status != "pending":
                            for ids in _fuse(held.pop(group), batch_cap):
                                queue.append((ids, 0, 0.0))
                now = time.monotonic()
                deferred: List[tuple] = []
                for entry in queue:
                    ids, attempt, not_before = entry
                    if not_before > now or not backend.has_capacity():
                        deferred.append(entry)
                        continue
                    spool = (
                        self._new_spool() if len(ids) > 1 else None
                    )
                    handle = backend.submit(
                        ids, attempt, worker,
                        [(payloads[i], labels[i]) for i in ids],
                        spool,
                    )
                    if handle is None:
                        # Backend cannot take it right now (e.g. the
                        # pool broke between loops); re-offer uncharged.
                        self._discard_spool(spool)
                        deferred.append(entry)
                        continue
                    outstanding[handle] = (tuple(ids), attempt, spool)
                queue[:] = deferred

                if not outstanding:
                    if queue:
                        wake = min(entry[2] for entry in queue)
                        time.sleep(
                            max(0.0, min(wake - time.monotonic(), 0.1))
                        )
                    continue

                for event in backend.poll():
                    absorb_event(event)
        except (KeyboardInterrupt, backends_mod.BackendUnavailable):
            backend.cancel()
            for _, _, spool in outstanding.values():
                self._discard_spool(spool)
            raise
        else:
            backend.close()
        finally:
            self._merge_backend_health(backend.health())

    # -- batch spools ------------------------------------------------------

    def _new_spool(self) -> pathlib.Path:
        """Fresh spool file for one fused batch submission."""
        spool_dir = self.cache_dir / "batches"
        spool_dir.mkdir(parents=True, exist_ok=True)
        return spool_dir / f"{secrets.token_hex(8)}.jsonl"

    @staticmethod
    def _discard_spool(spool) -> None:
        if spool is None:
            return
        try:
            os.unlink(spool)
        except OSError:
            pass

    def _recover_batch(
        self, ids, attempt, spool, labels, keys, states, tick
    ) -> tuple:
        """Absorb the points a dead/expired batch already spooled.

        Returns the unfinished tail of ``ids``.  The spool holds one
        JSON envelope line per completed point, appended in batch
        order; a torn final line (the worker died mid-append) is
        ignored.  Completed points are absorbed exactly as if their
        future had returned -- cached, journalled, ticked -- so the
        retry re-runs *only* the remainder, and ``--resume`` sees each
        point individually.
        """
        if spool is None:
            return tuple(ids)
        envelopes: List[Dict] = []
        try:
            raw = pathlib.Path(spool).read_text()
        except OSError:
            raw = ""
        for line in raw.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                env = json.loads(line)
            except ValueError:
                break  # torn tail: the point was mid-write when it died
            if not isinstance(env, dict):
                break
            envelopes.append(env)
        self._discard_spool(spool)
        done = min(len(envelopes), len(ids))
        for j in range(done):
            self._absorb(
                ids[j], attempt, envelopes[j], labels, keys, states, tick,
                batched=True,
            )
        if done:
            self.batches += 1
            self.batch_points += done
        return tuple(ids[done:])

    def _infra_fault(
        self, queue, ids, attempt, kind, exc, labels, keys, states, tick
    ) -> None:
        """A dead worker process or a timeout: retry with backoff until
        the attempt budget runs out, then record the final status.
        ``ids`` is the (possibly spool-reduced) tuple of points still
        owed a result; empty means the batch actually finished."""
        if not ids:
            return
        if attempt < self.retries:
            not_before = time.monotonic() + self._backoff_delay(attempt)
            queue.append((tuple(ids), attempt + 1, not_before))
            return
        status = "timeout" if kind == "timeout" else "failed"
        for i in ids:
            states[i].attempts = attempt + 1
            self._fail(i, status, _error_dict(exc), labels, keys, states)
            tick(i)

    def _finalise(
        self,
        labels: Sequence[str],
        keys: Sequence[str],
        states: Sequence[_JobState],
    ) -> None:
        """Build the per-job records (payload order) and update counters;
        jobs still pending (interrupted run) become ``skipped``."""
        self._last_records = []
        for i, state in enumerate(states):
            if state.status == "pending":
                state.status = "skipped"
            if state.source == "hit":
                self.cache_hits += 1
            elif state.source == "journal":
                self.journal_hits += 1
            elif state.status != "skipped":
                self.cache_misses += 1
            result = state.result
            if isinstance(result, dict):
                cycles = result.get("simulated_cycles", 0)
                committed = result.get("committed_instructions", 0)
            else:
                cycles = 0
                committed = 0
            # Cache/journal hits carry the counters their original
            # execution recorded, but no artifact work happened in
            # *this* run -- don't let stale counters inflate the
            # totals.  Executed jobs prefer the envelope-level delta
            # (measured around the whole job in the worker process,
            # shm traffic included) over whatever the worker function
            # chose to embed in its result.
            artifacts = None
            if state.source == "miss":
                artifacts = state.artifacts or (
                    result.get("artifacts") or None
                    if isinstance(result, dict)
                    else None
                )
            wall = state.wall_s
            record = {
                "label": labels[i],
                "key": keys[i],
                "artifacts": artifacts,
                "cache": (
                    state.source if state.status != "skipped"
                    else "skipped"
                ),
                "status": state.status,
                "attempts": state.attempts,
                "error": state.error,
                "worker_pid": state.worker_pid,
                "batched": state.batched,
                "wall_s": wall,
                "simulated_cycles": cycles,
                "committed_instructions": committed,
                # Simulated instructions per wall-clock millisecond;
                # for cache hits this reflects the recorded wall time
                # of the original execution.
                "sim_kips": (
                    committed / wall / 1000.0 if wall > 0 else 0.0
                ),
            }
            self.records.append(record)
            self._last_records.append(record)
            if state.profile is not None:
                self.profiles.append((labels[i], state.profile))

    # -- benchmark-level API ----------------------------------------------

    def run_benchmarks(self, names: Sequence[str], config) -> List:
        """Fan (benchmark x REF seed) jobs out; reassemble per benchmark.

        Byte-identical to the serial path: job order, and therefore
        every combine step, is fixed by (name, seed) submission order.
        A benchmark with any failed seed job comes back as a
        failure-status :class:`~.harness.BenchmarkOutcome` (carrying
        the per-seed error summary) instead of aborting the sweep.
        """
        from .harness import BenchmarkOutcome, combine_seed_results

        payloads = [
            (name, seed, config)
            for name in names
            for seed in config.ref_seeds
        ]
        labels = [f"{name}@seed{seed}" for name, seed, _ in payloads]
        # Seeds of one benchmark share the TRAIN profile artifact: the
        # first seed job (leader) computes and persists it, the rest
        # load it from the store.
        results = self.map(
            _seed_worker,
            payloads,
            labels=labels,
            groups=[name for name, _, _ in payloads],
        )
        records = self._last_records
        per_seed = len(config.ref_seeds)
        outcomes = []
        for i, name in enumerate(names):
            lo, hi = i * per_seed, (i + 1) * per_seed
            chunk = results[lo:hi]
            if all(r is not None for r in chunk):
                outcomes.append(combine_seed_results(name, config, chunk))
                continue
            bad = [r for r in records[lo:hi] if r["status"] != "ok"]
            statuses = {r["status"] for r in bad}
            status = (
                "timeout" if "timeout" in statuses
                else "failed" if "failed" in statuses
                else "skipped"
            )
            detail = "; ".join(
                "{}: {}".format(
                    r["label"],
                    (r.get("error") or {}).get("type", r["status"]),
                )
                for r in bad
            )
            outcomes.append(
                BenchmarkOutcome.failure(
                    name, config, status=status, error=detail
                )
            )
        return outcomes

    def run_benchmark(self, name: str, config):
        return self.run_benchmarks([name], config)[0]

    def run_suite(self, suite: str, config) -> List:
        from ..workloads import suite_benchmarks

        return self.run_benchmarks(suite_benchmarks(suite), config)


_DEFAULT_ENGINE: Optional[ExperimentEngine] = None


def default_engine() -> ExperimentEngine:
    """Process-wide engine (``REPRO_JOBS``/``REPRO_CACHE`` honoured)."""
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = ExperimentEngine()
    return _DEFAULT_ENGINE


def get_engine(engine: Optional[ExperimentEngine] = None) -> ExperimentEngine:
    return engine if engine is not None else default_engine()
