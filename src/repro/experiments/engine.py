"""Parallel experiment-execution engine: supervision, cache, checkpoints.

Every paper figure is a bag of *independent* simulation jobs (one
benchmark, one REF seed, every width -- see :func:`.harness.run_seed`).
The engine fans those jobs out over a :class:`ProcessPoolExecutor`,
reassembles the results deterministically (order is fixed by submission
index, never completion time), and memoises each job on disk so that
re-running a figure after touching only a report renderer is instant.

* Worker count comes from the ``REPRO_JOBS`` environment variable, the
  CLI ``--jobs`` flag, or ``os.cpu_count()``; ``jobs=1`` is the serial
  path and runs every job in-process with no executor.
* The cache key is a SHA-256 over the worker's qualified name, a stable
  fingerprint of the job payload (benchmark, seed, widths, and every
  ``RunConfig``/``MachineConfig``/``SelectionConfig``/``TransformConfig``
  field), the source hash of the whole ``repro`` package, and a schema
  version -- touching any simulator/compiler source invalidates the
  whole cache; touching a renderer invalidates nothing.  Entries that
  fail validation on read (wrong schema, truncated JSON, missing
  ``result``) count as misses and are moved to
  ``results/.cache/quarantine/`` for inspection.
* **Supervision**: a worker that raises records a structured failure
  (status ``failed`` + traceback) instead of aborting the run; a worker
  process that dies (``BrokenProcessPool``, e.g. an OOM kill) is an
  infrastructure fault and is retried with exponential backoff + jitter
  (``REPRO_RETRIES``, default 2); a job that exceeds the per-job
  timeout (``REPRO_JOB_TIMEOUT`` / ``--job-timeout``) is detected by a
  watchdog that kills and respawns the pool, resubmitting innocent
  in-flight jobs at no attempt cost.  Deterministic worker exceptions
  are never retried -- they would fail identically again.
* **Checkpoint/resume**: when the engine has a ``run_id``, every
  finished job (success or final failure) is appended to a run journal
  (``results/.cache/runs/<run-id>.jsonl``) the moment it completes;
  constructing the engine with ``resume=True`` replays the journal's
  successes so only unfinished/failed jobs re-run.
* Observability: per-job wall time and simulated-cycle counters, a
  ``progress(done, total, label)`` callback, and a machine-readable
  manifest (:meth:`ExperimentEngine.write_manifest`) recording config,
  timings, per-job status/attempts/error, and cache hit/miss counts.
* Fault injection: see :mod:`.faults` (``REPRO_FAULT_INJECT``) for the
  deterministic harness that exercises all of the above in tests.

Environment knobs: ``REPRO_JOBS`` (worker count), ``REPRO_CACHE=0``
(disable the cache), ``REPRO_CACHE_DIR`` (relocate it from the default
``results/.cache/``), ``REPRO_RETRIES`` (infrastructure-fault retries,
default 2), ``REPRO_JOB_TIMEOUT`` (per-job seconds, 0 = off),
``REPRO_RETRY_BACKOFF`` (base backoff seconds, default 0.5),
``REPRO_FAULT_INJECT`` (fault plan).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import random
import secrets
import tempfile
import time
import traceback
from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
)

from . import faults

#: Bump when the cached-result layout changes.
CACHE_SCHEMA = 1

#: Manifest layout version (see EXPERIMENTS.md for the schema).
#: v2 adds committed-instruction counts and simulated-KIPS per job and in
#: the totals; v3 adds per-job status (ok/failed/timeout/skipped),
#: attempt counts, failure tracebacks, and the run id / robustness knobs;
#: v4 adds per-job and total artifact counters (trace capture/replay,
#: shared profile and compile hits -- see :mod:`.artifacts`).
MANIFEST_SCHEMA = 4

#: Repo-level results directory (works for the src-layout checkout).
RESULTS_DIR = pathlib.Path(__file__).resolve().parents[3] / "results"

_CODE_VERSION: Optional[str] = None


def code_version() -> str:
    """Hash of every ``repro`` source file; part of every cache key."""
    global _CODE_VERSION
    if _CODE_VERSION is None:
        package_root = pathlib.Path(__file__).resolve().parents[1]
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(path.read_bytes())
        _CODE_VERSION = digest.hexdigest()[:16]
    return _CODE_VERSION


def fingerprint(obj: Any) -> Any:
    """Reduce ``obj`` to a stable, JSON-serialisable structure.

    Dataclasses flatten to their field dict (tagged with the class name),
    callables/classes to their qualified name, so two configs fingerprint
    equal exactly when every field is equal.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: fingerprint(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        return {"__class__": type(obj).__qualname__, **fields}
    if isinstance(obj, dict):
        return {str(k): fingerprint(v) for k, v in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [fingerprint(v) for v in obj]
    if isinstance(obj, pathlib.Path):
        return str(obj)
    if callable(obj):
        return f"{obj.__module__}.{obj.__qualname__}"
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(f"cannot fingerprint {type(obj).__name__}: {obj!r}")


#: Number of cumulative-time entries kept per profiled job.
PROFILE_TOP = 20


def _env_profile_enabled() -> bool:
    return os.environ.get("REPRO_PROFILE", "").strip().lower() in (
        "1", "true", "yes", "on",
    )


def _profile_text(profiler) -> str:
    """Top-N cumulative entries of a cProfile run, as plain text."""
    import io
    import pstats

    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(PROFILE_TOP)
    return buffer.getvalue()


def _error_dict(exc: BaseException, trace: Optional[str] = None) -> Dict:
    """Structured failure record for manifests and journals."""
    if trace is None:
        trace = "".join(
            traceback.format_exception_only(type(exc), exc)
        ).strip()
    return {
        "type": type(exc).__name__,
        "message": str(exc),
        "traceback": trace,
    }


def _run_timed(
    worker: Callable[[Any], Dict],
    payload: Any,
    label: str = "",
    attempt: int = 0,
    in_process: bool = False,
) -> Dict:
    """Top-level so it pickles; returns a status envelope.

    ``{"status": "ok", "result": ..., "wall_s": ..., "profile": ...}``
    on success, ``{"status": "failed", "wall_s": ..., "error": {...}}``
    when the worker raises -- exceptions are captured *inside* the
    worker process so the full traceback survives the trip back and a
    deterministic failure can be told apart from infrastructure faults
    (which surface as ``BrokenProcessPool``/timeouts instead).

    Profiling is keyed off the ``REPRO_PROFILE`` environment variable
    (not an argument) so the switch survives the trip into
    ``ProcessPoolExecutor`` workers; fault injection
    (``REPRO_FAULT_INJECT``) rides the environment the same way.
    """
    start = time.perf_counter()
    profile = None
    try:
        faults.inject_worker_faults(label, attempt, in_process=in_process)
        if _env_profile_enabled():
            import cProfile

            profiler = cProfile.Profile()
            result = profiler.runcall(worker, payload)
            profile = _profile_text(profiler)
        else:
            result = worker(payload)
    except Exception as exc:
        return {
            "status": "failed",
            "wall_s": time.perf_counter() - start,
            "error": _error_dict(exc, trace=traceback.format_exc()),
        }
    return {
        "status": "ok",
        "result": result,
        "wall_s": time.perf_counter() - start,
        "profile": profile,
    }


def _seed_worker(payload) -> Dict:
    """One (benchmark, REF seed) simulation job (see harness.run_seed)."""
    from .harness import run_seed

    name, seed, config = payload
    return run_seed(name, seed, config)


def _env_jobs() -> int:
    raw = os.environ.get("REPRO_JOBS", "").strip()
    if raw:
        return max(1, int(raw))
    return os.cpu_count() or 1


def _env_cache_enabled() -> bool:
    return os.environ.get("REPRO_CACHE", "1").strip().lower() not in (
        "0", "false", "no", "off",
    )


def _env_retries() -> int:
    raw = os.environ.get("REPRO_RETRIES", "").strip()
    return max(0, int(raw)) if raw else 2


def _env_job_timeout() -> Optional[float]:
    raw = os.environ.get("REPRO_JOB_TIMEOUT", "").strip()
    if not raw:
        return None
    value = float(raw)
    return value if value > 0 else None


def _env_retry_backoff() -> float:
    raw = os.environ.get("REPRO_RETRY_BACKOFF", "").strip()
    return max(0.0, float(raw)) if raw else 0.5


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Terminate a pool's workers and abandon it without waiting.

    ``ProcessPoolExecutor`` has no public kill switch, so the watchdog
    reaches for the worker ``Process`` handles directly; the management
    thread notices the deaths and winds itself down.
    """
    processes = getattr(pool, "_processes", None) or {}
    for proc in list(processes.values()):
        try:
            proc.terminate()
        except Exception:
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:
        pass


class _JobState:
    """Mutable per-payload bookkeeping for one :meth:`map` call."""

    __slots__ = (
        "result", "wall_s", "source", "profile", "status", "error",
        "attempts",
    )

    def __init__(self) -> None:
        self.result: Optional[Dict] = None
        self.wall_s = 0.0
        #: "hit" (cache), "journal" (resume replay), or "miss" (executed).
        self.source = "miss"
        self.profile: Optional[str] = None
        #: "pending" -> "ok" | "failed" | "timeout" | "skipped".
        self.status = "pending"
        self.error: Optional[Dict] = None
        self.attempts = 0


class ExperimentEngine:
    """Schedules experiment jobs over processes, with an on-disk cache,
    per-job fault isolation, retries, and a checkpoint journal."""

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache_dir: Optional[pathlib.Path] = None,
        use_cache: Optional[bool] = None,
        progress: Optional[Callable[[int, int, str], None]] = None,
        run_id: Optional[str] = None,
        resume: bool = False,
        job_timeout: Optional[float] = None,
        retries: Optional[int] = None,
    ) -> None:
        self.jobs = max(1, jobs) if jobs is not None else _env_jobs()
        if cache_dir is not None:
            self.cache_dir = pathlib.Path(cache_dir)
        else:
            self.cache_dir = pathlib.Path(
                os.environ.get("REPRO_CACHE_DIR", "")
                or RESULTS_DIR / ".cache"
            )
        self.use_cache = (
            use_cache if use_cache is not None else _env_cache_enabled()
        )
        self.progress = progress
        #: Journal identity; ``None`` disables journalling entirely.
        self.run_id = run_id
        self.resume = resume
        self.job_timeout = (
            job_timeout if job_timeout is not None else _env_job_timeout()
        )
        self.retries = retries if retries is not None else _env_retries()
        self.retry_backoff = _env_retry_backoff()
        #: When set (the CLI does), a partial manifest is written here if
        #: a run is interrupted mid-:meth:`map`.
        self.manifest_path: Optional[pathlib.Path] = None
        self._journal_handle = None
        self._journal_replay: Dict[str, Dict] = (
            self._load_journal() if (resume and run_id) else {}
        )
        self._rng = random.Random()  # backoff jitter only
        self.reset_stats()

    @staticmethod
    def new_run_id() -> str:
        """Fresh journal identity, e.g. ``20260806-104512-3fa9c1``."""
        return time.strftime("%Y%m%d-%H%M%S") + "-" + secrets.token_hex(3)

    # -- observability -----------------------------------------------------

    def reset_stats(self) -> None:
        self.cache_hits = 0
        self.cache_misses = 0
        self.journal_hits = 0
        self.cache_quarantined = 0
        #: One record per executed/looked-up job, in submission order.
        self.records: List[Dict] = []
        #: Records of the most recent :meth:`map` call, payload-aligned.
        self._last_records: List[Dict] = []
        #: (label, text) per profiled job (``REPRO_PROFILE=1`` runs only).
        self.profiles: List[tuple] = []

    @property
    def total_wall_s(self) -> float:
        return sum(r["wall_s"] for r in self.records)

    @property
    def total_simulated_cycles(self) -> int:
        return sum(r["simulated_cycles"] for r in self.records)

    @property
    def total_committed_instructions(self) -> int:
        return sum(r["committed_instructions"] for r in self.records)

    @property
    def total_sim_kips(self) -> float:
        """Simulated-KIPS over every recorded job: committed (simulated)
        instructions per wall-clock millisecond of job time."""
        wall = self.total_wall_s
        if wall <= 0:
            return 0.0
        return self.total_committed_instructions / wall / 1000.0

    def artifact_totals(self) -> Dict[str, int]:
        """Sum of per-job artifact counters (see :mod:`.artifacts`).

        Only jobs that actually executed this run contribute
        (cache/journal hits record ``artifacts: null``), so the totals
        describe the artifact work *this* run performed.
        """
        totals: Dict[str, int] = {}
        for record in self.records:
            for name, value in (record.get("artifacts") or {}).items():
                totals[name] = totals.get(name, 0) + value
        return totals

    @property
    def failures(self) -> List[Dict]:
        """Records that ended in ``failed``/``timeout`` (not skipped)."""
        return [
            r for r in self.records if r["status"] in ("failed", "timeout")
        ]

    def status_counts(self) -> Dict[str, int]:
        counts = {"ok": 0, "failed": 0, "timeout": 0, "skipped": 0}
        for record in self.records:
            counts[record.get("status", "ok")] = (
                counts.get(record.get("status", "ok"), 0) + 1
            )
        return counts

    def manifest(self, config: Any = None) -> Dict:
        """Machine-readable run record (see EXPERIMENTS.md for schema)."""
        try:
            plan = faults.plan_from_env()
        except ValueError:
            plan = None
        counts = self.status_counts()
        out = {
            "schema": MANIFEST_SCHEMA,
            "written_unix": time.time(),
            "engine": {
                "jobs": self.jobs,
                "cache_dir": str(self.cache_dir),
                "cache_enabled": self.use_cache,
                "code_version": code_version(),
                "run_id": self.run_id,
                "resume": self.resume,
                "retries": self.retries,
                "job_timeout_s": self.job_timeout,
                "fault_inject": plan.spec() if plan else None,
            },
            "totals": {
                "jobs": len(self.records),
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "journal_hits": self.journal_hits,
                "quarantined": self.cache_quarantined,
                "artifacts": self.artifact_totals(),
                "ok": counts["ok"],
                "failed": counts["failed"],
                "timeout": counts["timeout"],
                "skipped": counts["skipped"],
                "retries_used": sum(
                    max(0, r.get("attempts", 1) - 1) for r in self.records
                ),
                "wall_s": self.total_wall_s,
                "simulated_cycles": self.total_simulated_cycles,
                "committed_instructions":
                    self.total_committed_instructions,
                "sim_kips": self.total_sim_kips,
            },
            "jobs": self.records,
        }
        if config is not None:
            out["config"] = fingerprint(config)
        return out

    def write_manifest(self, path: pathlib.Path, config: Any = None) -> None:
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.manifest(config), indent=2) + "\n")
        if self.profiles:
            self.write_profiles(path.with_suffix(".profile.txt"))

    def write_profiles(self, path: pathlib.Path) -> None:
        """Write the per-job cProfile summaries gathered under
        ``REPRO_PROFILE=1`` (one top-20-cumulative section per job)."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        sections = [
            f"==== {label} ====\n{text.strip()}\n"
            for label, text in self.profiles
        ]
        path.write_text("\n".join(sections))

    # -- cache -------------------------------------------------------------

    def _cache_key(self, worker: Callable, payload: Any) -> str:
        blob = json.dumps(
            {
                "schema": CACHE_SCHEMA,
                "worker": f"{worker.__module__}.{worker.__qualname__}",
                "payload": fingerprint(payload),
                "code": code_version(),
            },
            sort_keys=True,
        )
        return hashlib.sha256(blob.encode()).hexdigest()

    def _quarantine(self, path: pathlib.Path) -> None:
        """Move an unreadable/stale cache entry aside for inspection."""
        quarantine_dir = self.cache_dir / "quarantine"
        try:
            quarantine_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, quarantine_dir / path.name)
        except OSError:
            return
        self.cache_quarantined += 1

    def _cache_load(self, key: Optional[str]) -> Optional[Dict]:
        """Validated cache read: a missing file is a plain miss; an entry
        that is not valid JSON, carries the wrong schema, or lacks a dict
        ``result`` is quarantined and counts as a miss (it used to raise
        ``KeyError`` mid-run)."""
        if key is None or not self.use_cache:
            return None
        path = self.cache_dir / f"{key}.json"
        try:
            raw = path.read_text()
        except OSError:
            return None
        try:
            entry = json.loads(raw)
        except ValueError:
            self._quarantine(path)
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("schema") != CACHE_SCHEMA
            or not isinstance(entry.get("result"), dict)
        ):
            self._quarantine(path)
            return None
        return entry

    def _cache_store(
        self, key: Optional[str], label: str, result: Dict, wall_s: float
    ) -> None:
        if key is None or not self.use_cache:
            return
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {
                "schema": CACHE_SCHEMA,
                "label": label,
                "wall_s": wall_s,
                "result": result,
            }
        )
        if faults.should_corrupt_cache(label):
            payload = payload[: max(1, len(payload) // 2)]
        fd, tmp = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp, self.cache_dir / f"{key}.json")
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    # -- run journal (checkpoint/resume) -----------------------------------

    def journal_path(self) -> Optional[pathlib.Path]:
        if self.run_id is None:
            return None
        return self.cache_dir / "runs" / f"{self.run_id}.jsonl"

    def _load_journal(self) -> Dict[str, Dict]:
        """Successful entries of an earlier run, keyed by cache key.

        Tolerates a torn final line (the previous run may have died
        mid-append); later entries for the same key win.
        """
        path = self.journal_path()
        replay: Dict[str, Dict] = {}
        if path is None or not path.exists():
            return replay
        for line in path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                continue
            if not isinstance(entry, dict) or "key" not in entry:
                continue
            if entry.get("status") == "ok" and isinstance(
                entry.get("result"), dict
            ):
                replay[entry["key"]] = entry
            else:
                replay.pop(entry.get("key"), None)
        return replay

    def _journal_append(self, entry: Dict) -> None:
        path = self.journal_path()
        if path is None:
            return
        if self._journal_handle is None:
            path.parent.mkdir(parents=True, exist_ok=True)
            self._journal_handle = open(path, "a")
        self._journal_handle.write(json.dumps(entry) + "\n")
        self._journal_handle.flush()

    def close_journal(self) -> None:
        if self._journal_handle is not None:
            try:
                self._journal_handle.close()
            finally:
                self._journal_handle = None

    # -- execution ---------------------------------------------------------

    def map(
        self,
        worker: Callable[[Any], Dict],
        payloads: Sequence[Any],
        labels: Optional[Sequence[str]] = None,
        groups: Optional[Sequence[Any]] = None,
    ) -> List[Optional[Dict]]:
        """Run ``worker`` over every payload; results in payload order.

        ``groups``, when given, is a payload-aligned sequence of
        hashable artifact-group ids: jobs in one group share
        content-addressed artifacts (traces/profiles), so the first
        pending job of each group runs as the *leader* -- it captures
        and persists the shared artifacts -- and the rest of the group
        is held back until the leader finishes, then fanned out to
        replay from the warm store.  Only the parallel path reorders;
        ``jobs=1`` already runs in payload order.  Result order is
        unaffected.

        ``worker`` must be a top-level function returning a
        JSON-serialisable dict (so results can cross process boundaries
        and live in the cache).  A ``"simulated_cycles"`` key, when
        present, feeds the manifest's cycle counter.

        A job whose worker raises, whose process dies, or which exceeds
        the per-job timeout (after ``retries`` infrastructure retries)
        yields ``None`` in the returned list instead of aborting the
        whole call; the corresponding entry of :attr:`records` carries
        the status and the failure detail.  Every finished job is
        persisted to the cache and the run journal *as it completes*,
        so an interrupt or crash loses at most the jobs in flight.

        On ``KeyboardInterrupt``: pending work is cancelled, the pool
        is shut down without waiting, completed results are already on
        disk, unfinished jobs are recorded as ``skipped``, a partial
        manifest is written to :attr:`manifest_path` (when set), and
        the interrupt is re-raised.
        """
        total = len(payloads)
        if labels is None:
            labels = [f"{worker.__name__}[{i}]" for i in range(total)]
        keys = [self._cache_key(worker, p) for p in payloads]
        states = [_JobState() for _ in range(total)]
        progress_done = [0]

        # Workers resolve the artifact store (traces/profiles) through
        # REPRO_CACHE_DIR; export this engine's root for the duration of
        # the call so a test engine on a tmp cache_dir keeps its
        # artifacts there too (pool workers inherit the environment at
        # spawn, the serial path reads it directly).
        previous_root = os.environ.get("REPRO_CACHE_DIR")
        os.environ["REPRO_CACHE_DIR"] = str(self.cache_dir)

        def tick(i: int) -> None:
            progress_done[0] += 1
            if self.progress:
                self.progress(progress_done[0], total, labels[i])

        pending: List[int] = []
        for i in range(total):
            state = states[i]
            replayed = self._journal_replay.get(keys[i])
            if replayed is not None:
                state.result = replayed["result"]
                state.wall_s = replayed.get("wall_s", 0.0)
                state.source = "journal"
                state.status = "ok"
                tick(i)
                continue
            cached = self._cache_load(keys[i])
            if cached is not None:
                state.result = cached["result"]
                state.wall_s = cached.get("wall_s", 0.0)
                state.source = "hit"
                state.status = "ok"
                tick(i)
            else:
                pending.append(i)

        try:
            if pending and self.jobs > 1:
                self._run_supervised(
                    worker, payloads, labels, keys, states, pending, tick,
                    groups=groups,
                )
            elif pending:
                self._run_serial(
                    worker, payloads, labels, keys, states, pending, tick
                )
        except KeyboardInterrupt:
            self._finalise(labels, keys, states)
            if self.manifest_path is not None:
                try:
                    self.write_manifest(self.manifest_path)
                except OSError:
                    pass
            raise
        finally:
            if previous_root is None:
                os.environ.pop("REPRO_CACHE_DIR", None)
            else:
                os.environ["REPRO_CACHE_DIR"] = previous_root

        self._finalise(labels, keys, states)
        return [
            state.result if state.status == "ok" else None
            for state in states
        ]

    # -- completion plumbing (shared by serial + supervised paths) ---------

    def _absorb(
        self,
        i: int,
        attempt: int,
        envelope: Dict,
        labels: Sequence[str],
        keys: Sequence[str],
        states: Sequence[_JobState],
        tick: Callable[[int], None],
    ) -> None:
        """Fold one worker envelope into the job state; persist it."""
        state = states[i]
        state.attempts = attempt + 1
        state.wall_s = envelope.get("wall_s", 0.0)
        if envelope.get("status") == "ok":
            state.result = envelope.get("result")
            state.profile = envelope.get("profile")
            state.status = "ok"
            self._cache_store(keys[i], labels[i], state.result, state.wall_s)
            self._journal_append(
                {
                    "key": keys[i],
                    "label": labels[i],
                    "status": "ok",
                    "wall_s": state.wall_s,
                    "attempts": state.attempts,
                    "result": state.result,
                    "unix": time.time(),
                }
            )
        else:
            error = envelope.get("error") or {
                "type": "InvalidEnvelope",
                "message": repr(envelope),
                "traceback": "",
            }
            # A serial-path injected hang degrades to an exception but
            # is still a timeout as far as reporting goes.
            status = (
                "timeout" if error.get("type") == "InjectedHang"
                else "failed"
            )
            self._fail(i, status, error, labels, keys, states)
        tick(i)

    def _fail(
        self,
        i: int,
        status: str,
        error: Dict,
        labels: Sequence[str],
        keys: Sequence[str],
        states: Sequence[_JobState],
    ) -> None:
        """Record a job's final failure (never cached, but journaled)."""
        state = states[i]
        state.status = status
        state.error = error
        state.attempts = max(1, state.attempts)
        self._journal_append(
            {
                "key": keys[i],
                "label": labels[i],
                "status": status,
                "wall_s": state.wall_s,
                "attempts": state.attempts,
                "error": error,
                "unix": time.time(),
            }
        )

    def _backoff_delay(self, attempt: int) -> float:
        base = self.retry_backoff
        if base <= 0:
            return 0.0
        return base * (2 ** attempt) + self._rng.uniform(0, base)

    def _run_serial(
        self, worker, payloads, labels, keys, states, pending, tick
    ) -> None:
        """The ``jobs=1`` path: in-process, no watchdog (a timeout
        cannot interrupt the main process), deterministic failures
        isolated exactly like the pool path."""
        for i in pending:
            envelope = _run_timed(
                worker, payloads[i], labels[i], 0, in_process=True
            )
            self._absorb(i, 0, envelope, labels, keys, states, tick)

    def _run_supervised(
        self, worker, payloads, labels, keys, states, pending, tick,
        groups=None,
    ) -> None:
        """Pool execution under supervision.

        At most ``jobs`` futures are outstanding at once so a submitted
        job starts (approximately) immediately, which is what makes a
        submission-time deadline a faithful per-job timeout.  Queue
        entries are ``(index, attempt, not_before)``; infrastructure
        faults (dead worker process, timeout) requeue with the attempt
        charged and an exponential-backoff-with-jitter delay, while
        innocent jobs caught in a pool kill requeue at no cost.

        Artifact groups (see :meth:`map`): the first pending member of
        each group enters the queue as leader; the rest wait in
        ``held`` and are released the moment the leader reaches a
        terminal status (ok *or* failed -- followers of a failed
        leader still run, they just find a cold artifact store).
        """
        max_workers = min(self.jobs, len(pending))
        timeout = self.job_timeout
        poll = (
            max(0.01, min(0.1, timeout / 5.0)) if timeout else 0.1
        )
        queue: List[tuple] = []
        held: Dict[Any, List[tuple]] = {}
        leaders: Dict[Any, int] = {}
        for i in pending:
            group = groups[i] if groups is not None else None
            if group is None:
                queue.append((i, 0, 0.0))
            elif group not in leaders:
                leaders[group] = i
                queue.append((i, 0, 0.0))
            else:
                held.setdefault(group, []).append((i, 0, 0.0))
        outstanding: Dict[Any, tuple] = {}
        pool: Optional[ProcessPoolExecutor] = None

        def settle(future, i: int, attempt: int) -> bool:
            """Fold a completed future; returns True if the pool broke."""
            try:
                envelope = future.result()
            except (BrokenProcessPool, CancelledError) as exc:
                self._infra_fault(
                    queue, i, attempt, "broken-pool", exc,
                    labels, keys, states, tick,
                )
                return True
            except Exception as exc:
                # e.g. the envelope failed to unpickle: deterministic.
                states[i].attempts = attempt + 1
                self._fail(
                    i, "failed", _error_dict(exc), labels, keys, states
                )
                tick(i)
                return False
            self._absorb(
                i, attempt, envelope, labels, keys, states, tick
            )
            return False

        try:
            while queue or outstanding or held:
                if held:
                    for group in list(held):
                        if states[leaders[group]].status != "pending":
                            queue.extend(held.pop(group))
                now = time.monotonic()
                if pool is None:
                    pool = ProcessPoolExecutor(max_workers=max_workers)
                # Fill free worker slots with ready queue entries.
                pool_died = False
                deferred: List[tuple] = []
                for entry in queue:
                    i, attempt, not_before = entry
                    if pool_died or len(outstanding) >= max_workers \
                            or not_before > now:
                        deferred.append(entry)
                        continue
                    try:
                        future = pool.submit(
                            _run_timed, worker, payloads[i],
                            labels[i], attempt,
                        )
                    except Exception:
                        # Pool broke between loops; requeue at no cost.
                        deferred.append(entry)
                        pool_died = True
                        continue
                    deadline = now + timeout if timeout else None
                    outstanding[future] = (i, attempt, deadline)
                queue[:] = deferred

                if pool_died:
                    self._drain_broken(outstanding, queue, settle)
                    _kill_pool(pool)
                    pool = None
                    continue

                if not outstanding:
                    if queue:
                        wake = min(entry[2] for entry in queue)
                        time.sleep(
                            max(0.0, min(wake - time.monotonic(), 1.0))
                        )
                    continue

                wait_timeout = poll if (timeout or queue) else None
                done, _ = wait(
                    set(outstanding),
                    timeout=wait_timeout,
                    return_when=FIRST_COMPLETED,
                )
                broken = False
                for future in done:
                    i, attempt, _ = outstanding.pop(future)
                    broken = settle(future, i, attempt) or broken
                if broken:
                    # Every other future on the dead pool resolves
                    # exceptionally as well; retry them all, then
                    # respawn.
                    self._drain_broken(outstanding, queue, settle)
                    _kill_pool(pool)
                    pool = None
                    continue

                if timeout:
                    now = time.monotonic()
                    expired = {
                        future
                        for future, (_, _, deadline) in outstanding.items()
                        if deadline is not None
                        and now >= deadline
                        and not future.done()
                    }
                    if expired:
                        # The watchdog can only kill whole pools, so
                        # completed-in-the-meantime futures are folded
                        # normally and innocent running jobs requeue
                        # with no attempt charged.
                        for future, (i, attempt, _) in list(
                            outstanding.items()
                        ):
                            if future in expired:
                                exc = TimeoutError(
                                    f"job {labels[i]!r} exceeded "
                                    f"{timeout:g}s (attempt {attempt})"
                                )
                                self._infra_fault(
                                    queue, i, attempt, "timeout", exc,
                                    labels, keys, states, tick,
                                )
                            elif future.done():
                                settle(future, i, attempt)
                            else:
                                queue.append((i, attempt, 0.0))
                        outstanding.clear()
                        _kill_pool(pool)
                        pool = None
        except KeyboardInterrupt:
            if pool is not None:
                for future in outstanding:
                    future.cancel()
                _kill_pool(pool)
            raise
        else:
            if pool is not None:
                pool.shutdown(wait=True)

    def _drain_broken(
        self, outstanding: Dict, queue: List[tuple], settle
    ) -> bool:
        """Fold every remaining future of a broken pool (they all
        resolve promptly once the pool notices the dead worker)."""
        broken = False
        for future, (i, attempt, _) in list(outstanding.items()):
            broken = settle(future, i, attempt) or broken
        outstanding.clear()
        return broken

    def _infra_fault(
        self, queue, i, attempt, kind, exc, labels, keys, states, tick
    ) -> None:
        """A dead worker process or a timeout: retry with backoff until
        the attempt budget runs out, then record the final status."""
        if attempt < self.retries:
            not_before = time.monotonic() + self._backoff_delay(attempt)
            queue.append((i, attempt + 1, not_before))
            return
        states[i].attempts = attempt + 1
        status = "timeout" if kind == "timeout" else "failed"
        self._fail(i, status, _error_dict(exc), labels, keys, states)
        tick(i)

    def _finalise(
        self,
        labels: Sequence[str],
        keys: Sequence[str],
        states: Sequence[_JobState],
    ) -> None:
        """Build the per-job records (payload order) and update counters;
        jobs still pending (interrupted run) become ``skipped``."""
        self._last_records = []
        for i, state in enumerate(states):
            if state.status == "pending":
                state.status = "skipped"
            if state.source == "hit":
                self.cache_hits += 1
            elif state.source == "journal":
                self.journal_hits += 1
            elif state.status != "skipped":
                self.cache_misses += 1
            result = state.result
            if isinstance(result, dict):
                cycles = result.get("simulated_cycles", 0)
                committed = result.get("committed_instructions", 0)
                # Cache/journal hits carry the counters their original
                # execution recorded, but no artifact work happened in
                # *this* run -- don't let stale counters inflate the
                # totals.
                artifacts = (
                    result.get("artifacts") or None
                    if state.source == "miss"
                    else None
                )
            else:
                cycles = 0
                committed = 0
                artifacts = None
            wall = state.wall_s
            record = {
                "label": labels[i],
                "key": keys[i],
                "artifacts": artifacts,
                "cache": (
                    state.source if state.status != "skipped"
                    else "skipped"
                ),
                "status": state.status,
                "attempts": state.attempts,
                "error": state.error,
                "wall_s": wall,
                "simulated_cycles": cycles,
                "committed_instructions": committed,
                # Simulated instructions per wall-clock millisecond;
                # for cache hits this reflects the recorded wall time
                # of the original execution.
                "sim_kips": (
                    committed / wall / 1000.0 if wall > 0 else 0.0
                ),
            }
            self.records.append(record)
            self._last_records.append(record)
            if state.profile is not None:
                self.profiles.append((labels[i], state.profile))

    # -- benchmark-level API ----------------------------------------------

    def run_benchmarks(self, names: Sequence[str], config) -> List:
        """Fan (benchmark x REF seed) jobs out; reassemble per benchmark.

        Byte-identical to the serial path: job order, and therefore
        every combine step, is fixed by (name, seed) submission order.
        A benchmark with any failed seed job comes back as a
        failure-status :class:`~.harness.BenchmarkOutcome` (carrying
        the per-seed error summary) instead of aborting the sweep.
        """
        from .harness import BenchmarkOutcome, combine_seed_results

        payloads = [
            (name, seed, config)
            for name in names
            for seed in config.ref_seeds
        ]
        labels = [f"{name}@seed{seed}" for name, seed, _ in payloads]
        # Seeds of one benchmark share the TRAIN profile artifact: the
        # first seed job (leader) computes and persists it, the rest
        # load it from the store.
        results = self.map(
            _seed_worker,
            payloads,
            labels=labels,
            groups=[name for name, _, _ in payloads],
        )
        records = self._last_records
        per_seed = len(config.ref_seeds)
        outcomes = []
        for i, name in enumerate(names):
            lo, hi = i * per_seed, (i + 1) * per_seed
            chunk = results[lo:hi]
            if all(r is not None for r in chunk):
                outcomes.append(combine_seed_results(name, config, chunk))
                continue
            bad = [r for r in records[lo:hi] if r["status"] != "ok"]
            statuses = {r["status"] for r in bad}
            status = (
                "timeout" if "timeout" in statuses
                else "failed" if "failed" in statuses
                else "skipped"
            )
            detail = "; ".join(
                "{}: {}".format(
                    r["label"],
                    (r.get("error") or {}).get("type", r["status"]),
                )
                for r in bad
            )
            outcomes.append(
                BenchmarkOutcome.failure(
                    name, config, status=status, error=detail
                )
            )
        return outcomes

    def run_benchmark(self, name: str, config):
        return self.run_benchmarks([name], config)[0]

    def run_suite(self, suite: str, config) -> List:
        from ..workloads import suite_benchmarks

        return self.run_benchmarks(suite_benchmarks(suite), config)


_DEFAULT_ENGINE: Optional[ExperimentEngine] = None


def default_engine() -> ExperimentEngine:
    """Process-wide engine (``REPRO_JOBS``/``REPRO_CACHE`` honoured)."""
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = ExperimentEngine()
    return _DEFAULT_ENGINE


def get_engine(engine: Optional[ExperimentEngine] = None) -> ExperimentEngine:
    return engine if engine is not None else default_engine()
