"""Parallel experiment-execution engine with a content-addressed cache.

Every paper figure is a bag of *independent* simulation jobs (one
benchmark, one REF seed, every width -- see :func:`.harness.run_seed`).
The engine fans those jobs out over a :class:`ProcessPoolExecutor`,
reassembles the results deterministically (order is fixed by submission
index, never completion time), and memoises each job on disk so that
re-running a figure after touching only a report renderer is instant.

* Worker count comes from the ``REPRO_JOBS`` environment variable, the
  CLI ``--jobs`` flag, or ``os.cpu_count()``; ``jobs=1`` is the serial
  path and runs every job in-process with no executor.
* The cache key is a SHA-256 over the worker's qualified name, a stable
  fingerprint of the job payload (benchmark, seed, widths, and every
  ``RunConfig``/``MachineConfig``/``SelectionConfig``/``TransformConfig``
  field), the source hash of the whole ``repro`` package, and a schema
  version -- touching any simulator/compiler source invalidates the
  whole cache; touching a renderer invalidates nothing.
* Observability: per-job wall time and simulated-cycle counters, a
  ``progress(done, total, label)`` callback, and a machine-readable
  manifest (:meth:`ExperimentEngine.write_manifest`) recording config,
  timings, and cache hit/miss counts next to each regenerated table.

Environment knobs: ``REPRO_JOBS`` (worker count), ``REPRO_CACHE=0``
(disable the cache), ``REPRO_CACHE_DIR`` (relocate it from the default
``results/.cache/``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
)

#: Bump when the cached-result layout changes.
CACHE_SCHEMA = 1

#: Manifest layout version (see EXPERIMENTS.md for the schema).
#: v2 adds committed-instruction counts and simulated-KIPS per job and in
#: the totals.
MANIFEST_SCHEMA = 2

#: Repo-level results directory (works for the src-layout checkout).
RESULTS_DIR = pathlib.Path(__file__).resolve().parents[3] / "results"

_CODE_VERSION: Optional[str] = None


def code_version() -> str:
    """Hash of every ``repro`` source file; part of every cache key."""
    global _CODE_VERSION
    if _CODE_VERSION is None:
        package_root = pathlib.Path(__file__).resolve().parents[1]
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(path.read_bytes())
        _CODE_VERSION = digest.hexdigest()[:16]
    return _CODE_VERSION


def fingerprint(obj: Any) -> Any:
    """Reduce ``obj`` to a stable, JSON-serialisable structure.

    Dataclasses flatten to their field dict (tagged with the class name),
    callables/classes to their qualified name, so two configs fingerprint
    equal exactly when every field is equal.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: fingerprint(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        return {"__class__": type(obj).__qualname__, **fields}
    if isinstance(obj, dict):
        return {str(k): fingerprint(v) for k, v in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [fingerprint(v) for v in obj]
    if isinstance(obj, pathlib.Path):
        return str(obj)
    if callable(obj):
        return f"{obj.__module__}.{obj.__qualname__}"
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    raise TypeError(f"cannot fingerprint {type(obj).__name__}: {obj!r}")


#: Number of cumulative-time entries kept per profiled job.
PROFILE_TOP = 20


def _env_profile_enabled() -> bool:
    return os.environ.get("REPRO_PROFILE", "").strip().lower() in (
        "1", "true", "yes", "on",
    )


def _profile_text(profiler) -> str:
    """Top-N cumulative entries of a cProfile run, as plain text."""
    import io
    import pstats

    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(PROFILE_TOP)
    return buffer.getvalue()


def _run_timed(worker: Callable[[Any], Dict], payload: Any):
    """Top-level so it pickles; returns (result, wall seconds, profile).

    Profiling is keyed off the ``REPRO_PROFILE`` environment variable
    (not an argument) so the switch survives the trip into
    ``ProcessPoolExecutor`` workers; ``profile`` is the top
    :data:`PROFILE_TOP` cumulative-time entries, or ``None`` when
    profiling is off.
    """
    if _env_profile_enabled():
        import cProfile

        profiler = cProfile.Profile()
        start = time.perf_counter()
        result = profiler.runcall(worker, payload)
        wall = time.perf_counter() - start
        return result, wall, _profile_text(profiler)
    start = time.perf_counter()
    result = worker(payload)
    return result, time.perf_counter() - start, None


def _seed_worker(payload) -> Dict:
    """One (benchmark, REF seed) simulation job (see harness.run_seed)."""
    from .harness import run_seed

    name, seed, config = payload
    return run_seed(name, seed, config)


def _env_jobs() -> int:
    raw = os.environ.get("REPRO_JOBS", "").strip()
    if raw:
        return max(1, int(raw))
    return os.cpu_count() or 1


def _env_cache_enabled() -> bool:
    return os.environ.get("REPRO_CACHE", "1").strip().lower() not in (
        "0", "false", "no", "off",
    )


class ExperimentEngine:
    """Schedules experiment jobs over processes, with an on-disk cache."""

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache_dir: Optional[pathlib.Path] = None,
        use_cache: Optional[bool] = None,
        progress: Optional[Callable[[int, int, str], None]] = None,
    ) -> None:
        self.jobs = max(1, jobs) if jobs is not None else _env_jobs()
        if cache_dir is not None:
            self.cache_dir = pathlib.Path(cache_dir)
        else:
            self.cache_dir = pathlib.Path(
                os.environ.get("REPRO_CACHE_DIR", "")
                or RESULTS_DIR / ".cache"
            )
        self.use_cache = (
            use_cache if use_cache is not None else _env_cache_enabled()
        )
        self.progress = progress
        self.reset_stats()

    # -- observability -----------------------------------------------------

    def reset_stats(self) -> None:
        self.cache_hits = 0
        self.cache_misses = 0
        #: One record per executed/looked-up job, in submission order.
        self.records: List[Dict] = []
        #: (label, text) per profiled job (``REPRO_PROFILE=1`` runs only).
        self.profiles: List[tuple] = []

    @property
    def total_wall_s(self) -> float:
        return sum(r["wall_s"] for r in self.records)

    @property
    def total_simulated_cycles(self) -> int:
        return sum(r["simulated_cycles"] for r in self.records)

    @property
    def total_committed_instructions(self) -> int:
        return sum(r["committed_instructions"] for r in self.records)

    @property
    def total_sim_kips(self) -> float:
        """Simulated-KIPS over every recorded job: committed (simulated)
        instructions per wall-clock millisecond of job time."""
        wall = self.total_wall_s
        if wall <= 0:
            return 0.0
        return self.total_committed_instructions / wall / 1000.0

    def manifest(self, config: Any = None) -> Dict:
        """Machine-readable run record (see EXPERIMENTS.md for schema)."""
        out = {
            "schema": MANIFEST_SCHEMA,
            "written_unix": time.time(),
            "engine": {
                "jobs": self.jobs,
                "cache_dir": str(self.cache_dir),
                "cache_enabled": self.use_cache,
                "code_version": code_version(),
            },
            "totals": {
                "jobs": len(self.records),
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "wall_s": self.total_wall_s,
                "simulated_cycles": self.total_simulated_cycles,
                "committed_instructions":
                    self.total_committed_instructions,
                "sim_kips": self.total_sim_kips,
            },
            "jobs": self.records,
        }
        if config is not None:
            out["config"] = fingerprint(config)
        return out

    def write_manifest(self, path: pathlib.Path, config: Any = None) -> None:
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.manifest(config), indent=2) + "\n")
        if self.profiles:
            self.write_profiles(path.with_suffix(".profile.txt"))

    def write_profiles(self, path: pathlib.Path) -> None:
        """Write the per-job cProfile summaries gathered under
        ``REPRO_PROFILE=1`` (one top-20-cumulative section per job)."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        sections = [
            f"==== {label} ====\n{text.strip()}\n"
            for label, text in self.profiles
        ]
        path.write_text("\n".join(sections))

    # -- cache -------------------------------------------------------------

    def _cache_key(self, worker: Callable, payload: Any) -> str:
        blob = json.dumps(
            {
                "schema": CACHE_SCHEMA,
                "worker": f"{worker.__module__}.{worker.__qualname__}",
                "payload": fingerprint(payload),
                "code": code_version(),
            },
            sort_keys=True,
        )
        return hashlib.sha256(blob.encode()).hexdigest()

    def _cache_load(self, key: Optional[str]) -> Optional[Dict]:
        if key is None or not self.use_cache:
            return None
        path = self.cache_dir / f"{key}.json"
        try:
            return json.loads(path.read_text())
        except (OSError, ValueError):
            return None

    def _cache_store(
        self, key: Optional[str], label: str, result: Dict, wall_s: float
    ) -> None:
        if key is None or not self.use_cache:
            return
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {
                "schema": CACHE_SCHEMA,
                "label": label,
                "wall_s": wall_s,
                "result": result,
            }
        )
        fd, tmp = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp, self.cache_dir / f"{key}.json")
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    # -- execution ---------------------------------------------------------

    def map(
        self,
        worker: Callable[[Any], Dict],
        payloads: Sequence[Any],
        labels: Optional[Sequence[str]] = None,
    ) -> List[Dict]:
        """Run ``worker`` over every payload; results in payload order.

        ``worker`` must be a top-level function returning a
        JSON-serialisable dict (so results can cross process boundaries
        and live in the cache).  A ``"simulated_cycles"`` key, when
        present, feeds the manifest's cycle counter.
        """
        total = len(payloads)
        if labels is None:
            labels = [f"{worker.__name__}[{i}]" for i in range(total)]
        keys = [self._cache_key(worker, p) for p in payloads]
        results: List[Optional[Dict]] = [None] * total
        walls = [0.0] * total
        hits = [False] * total
        profiles: List[Optional[str]] = [None] * total
        pending: List[int] = []
        done = 0
        for i in range(total):
            cached = self._cache_load(keys[i])
            if cached is not None:
                results[i] = cached["result"]
                walls[i] = cached.get("wall_s", 0.0)
                hits[i] = True
                done += 1
                if self.progress:
                    self.progress(done, total, labels[i])
            else:
                pending.append(i)

        if pending and self.jobs > 1:
            workers = min(self.jobs, len(pending))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(_run_timed, worker, payloads[i]): i
                    for i in pending
                }
                for future in as_completed(futures):
                    i = futures[future]
                    results[i], walls[i], profiles[i] = future.result()
                    done += 1
                    if self.progress:
                        self.progress(done, total, labels[i])
        else:
            for i in pending:
                results[i], walls[i], profiles[i] = _run_timed(
                    worker, payloads[i]
                )
                done += 1
                if self.progress:
                    self.progress(done, total, labels[i])

        for i in pending:
            self._cache_store(keys[i], labels[i], results[i], walls[i])

        for i in range(total):
            result = results[i]
            if isinstance(result, dict):
                cycles = result.get("simulated_cycles", 0)
                committed = result.get("committed_instructions", 0)
            else:
                cycles = 0
                committed = 0
            if hits[i]:
                self.cache_hits += 1
            else:
                self.cache_misses += 1
            wall = walls[i]
            self.records.append(
                {
                    "label": labels[i],
                    "key": keys[i],
                    "cache": "hit" if hits[i] else "miss",
                    "wall_s": wall,
                    "simulated_cycles": cycles,
                    "committed_instructions": committed,
                    # Simulated instructions per wall-clock millisecond;
                    # for cache hits this reflects the recorded wall time
                    # of the original execution.
                    "sim_kips": (
                        committed / wall / 1000.0 if wall > 0 else 0.0
                    ),
                }
            )
            if profiles[i] is not None:
                self.profiles.append((labels[i], profiles[i]))
        return results  # type: ignore[return-value]

    # -- benchmark-level API ----------------------------------------------

    def run_benchmarks(self, names: Sequence[str], config) -> List:
        """Fan (benchmark x REF seed) jobs out; reassemble per benchmark.

        Byte-identical to the serial path: job order, and therefore
        every combine step, is fixed by (name, seed) submission order.
        """
        from .harness import combine_seed_results

        payloads = [
            (name, seed, config)
            for name in names
            for seed in config.ref_seeds
        ]
        labels = [f"{name}@seed{seed}" for name, seed, _ in payloads]
        results = self.map(_seed_worker, payloads, labels=labels)
        per_seed = len(config.ref_seeds)
        outcomes = []
        for i, name in enumerate(names):
            chunk = results[i * per_seed:(i + 1) * per_seed]
            outcomes.append(combine_seed_results(name, config, chunk))
        return outcomes

    def run_benchmark(self, name: str, config):
        return self.run_benchmarks([name], config)[0]

    def run_suite(self, suite: str, config) -> List:
        from ..workloads import suite_benchmarks

        return self.run_benchmarks(suite_benchmarks(suite), config)


_DEFAULT_ENGINE: Optional[ExperimentEngine] = None


def default_engine() -> ExperimentEngine:
    """Process-wide engine (``REPRO_JOBS``/``REPRO_CACHE`` honoured)."""
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = ExperimentEngine()
    return _DEFAULT_ENGINE


def get_engine(engine: Optional[ExperimentEngine] = None) -> ExperimentEngine:
    return engine if engine is not None else default_engine()
