"""Housekeeping for the on-disk cache (``repro cache``).

The experiment cache root (``results/.cache/`` or ``REPRO_CACHE_DIR``)
accumulates four kinds of state:

* ``results`` -- cached job result JSONs in the cache root (the result
  cache, keyed by job fingerprint);
* ``runs``    -- per-run checkpoint journals (``runs/<run-id>.jsonl``);
* ``traces``  -- captured instruction traces (``traces/<key>.trace``);
* ``profiles`` -- TRAIN branch traces and measured profiles
  (``profiles/<key>.btrace`` / ``.json``);
* ``batches``  -- per-batch envelope spools (``batches/<nonce>.jsonl``);
  normally deleted the moment a batch settles, so anything found here
  is the residue of a run that died mid-flight;
* ``queue``    -- queue-backend run directories (``queue/<run-id>/``:
  pending/claimed/done job records, leases, worker health); removed
  when a run closes cleanly, so leftovers are the residue of a run
  that died mid-flight;
* ``quarantine`` -- artifacts that failed integrity validation.

Everything here is derived state: deleting any of it costs recompute
time, never correctness (content addressing recaptures on demand).
:func:`scan` sizes each section; :func:`prune` applies an age cutoff
and/or a total size budget (oldest files evicted first);
:func:`artifact_counters` reads the hit/miss counters a schema>=4 run
manifest aggregated; :func:`batch_totals` reads the schema-5 batch
and shared-memory accounting; :func:`backend_totals` reads the
schema-6 execution-backend health block (lease/failover counters,
per-worker records).
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: section name -> (subdirectory or "" for the cache root, glob pattern).
SECTIONS: Tuple[Tuple[str, str, str], ...] = (
    ("results", "", "*.json"),
    ("runs", "runs", "*.jsonl"),
    ("traces", "traces", "*.trace"),
    ("profiles", "profiles", "*"),
    ("batches", "batches", "*.jsonl"),
    ("queue", "queue", "**/*"),
    ("quarantine", "quarantine", "*"),
)


def cache_root(cache_dir: Optional[pathlib.Path] = None) -> pathlib.Path:
    if cache_dir is not None:
        return pathlib.Path(cache_dir)
    from .engine import RESULTS_DIR

    return pathlib.Path(
        os.environ.get("REPRO_CACHE_DIR", "") or RESULTS_DIR / ".cache"
    )


@dataclass
class SectionStats:
    name: str
    files: int = 0
    bytes: int = 0
    oldest_age_s: float = 0.0
    #: (mtime, size, path) per file, for prune ordering.
    entries: List[Tuple[float, int, pathlib.Path]] = field(
        default_factory=list
    )


def scan(
    cache_dir: Optional[pathlib.Path] = None,
    now: Optional[float] = None,
) -> Dict[str, SectionStats]:
    """Size every cache section (missing directories scan as empty)."""
    root = cache_root(cache_dir)
    now = time.time() if now is None else now
    report: Dict[str, SectionStats] = {}
    for name, subdir, pattern in SECTIONS:
        stats = SectionStats(name=name)
        directory = root / subdir if subdir else root
        if directory.is_dir():
            for path in sorted(directory.glob(pattern)):
                if not path.is_file():
                    continue
                try:
                    stat = path.stat()
                except OSError:
                    continue
                stats.files += 1
                stats.bytes += stat.st_size
                stats.oldest_age_s = max(
                    stats.oldest_age_s, now - stat.st_mtime
                )
                stats.entries.append((stat.st_mtime, stat.st_size, path))
        report[name] = stats
    return report


def prune(
    cache_dir: Optional[pathlib.Path] = None,
    max_age_days: Optional[float] = None,
    max_size_mb: Optional[float] = None,
    sections: Optional[Tuple[str, ...]] = None,
    now: Optional[float] = None,
) -> Dict[str, Tuple[int, int]]:
    """Delete cache files by age and/or total-size budget.

    Age first (anything older than ``max_age_days`` goes), then the
    size budget: if the survivors still exceed ``max_size_mb`` in
    total, the oldest files across all selected sections are evicted
    until the total fits.  Returns ``{section: (files, bytes)}``
    removed.  With neither limit set this is a no-op.
    """
    now = time.time() if now is None else now
    report = scan(cache_dir, now=now)
    selected = [
        stats
        for stats in report.values()
        if sections is None or stats.name in sections
    ]
    removed: Dict[str, Tuple[int, int]] = {
        stats.name: (0, 0) for stats in selected
    }
    survivors: List[Tuple[float, int, pathlib.Path, str]] = []
    for stats in selected:
        for mtime, size, path in stats.entries:
            age_days = (now - mtime) / 86400.0
            if max_age_days is not None and age_days > max_age_days:
                _remove(path, stats.name, size, removed)
            else:
                survivors.append((mtime, size, path, stats.name))
    if max_size_mb is not None:
        budget = int(max_size_mb * 1024 * 1024)
        total = sum(size for _, size, _, _ in survivors)
        survivors.sort()  # oldest first
        for _, size, path, section in survivors:
            if total <= budget:
                break
            _remove(path, section, size, removed)
            total -= size
    return removed


def _remove(
    path: pathlib.Path,
    section: str,
    size: int,
    removed: Dict[str, Tuple[int, int]],
) -> None:
    try:
        path.unlink()
    except OSError:
        return
    files, nbytes = removed[section]
    removed[section] = (files + 1, nbytes + size)


def artifact_counters(
    manifest_path: Optional[pathlib.Path] = None,
) -> Optional[Dict[str, int]]:
    """The ``totals.artifacts`` counters of the last run manifest
    (schema >= 4), or ``None`` when absent/unreadable/older-schema."""
    if manifest_path is None:
        from .engine import RESULTS_DIR

        manifest_path = RESULTS_DIR / "run_manifest.json"
    try:
        manifest = json.loads(pathlib.Path(manifest_path).read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(manifest, dict) or manifest.get("schema", 0) < 4:
        return None
    artifacts = manifest.get("totals", {}).get("artifacts")
    return artifacts if isinstance(artifacts, dict) else None


def batch_totals(
    manifest_path: Optional[pathlib.Path] = None,
) -> Optional[Dict[str, int]]:
    """Schema-5 batch/shared-memory accounting of the last manifest:
    fused batch submissions, points run inside them, and shm segments
    unlinked at run end.  ``None`` for older manifests."""
    if manifest_path is None:
        from .engine import RESULTS_DIR

        manifest_path = RESULTS_DIR / "run_manifest.json"
    try:
        manifest = json.loads(pathlib.Path(manifest_path).read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(manifest, dict) or manifest.get("schema", 0) < 5:
        return None
    totals = manifest.get("totals", {})
    return {
        name: totals.get(name, 0)
        for name in ("batches", "batch_points", "shm_segments_cleaned")
    }


def backend_totals(
    manifest_path: Optional[pathlib.Path] = None,
) -> Optional[Dict]:
    """Schema-6 execution-backend block of the last manifest: which
    backend drove the run, how often it degraded to the local pool,
    the summed lease/completion/failover counters, and the per-worker
    health records.  ``None`` for older manifests."""
    if manifest_path is None:
        from .engine import RESULTS_DIR

        manifest_path = RESULTS_DIR / "run_manifest.json"
    try:
        manifest = json.loads(pathlib.Path(manifest_path).read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(manifest, dict) or manifest.get("schema", 0) < 6:
        return None
    backend = manifest.get("backend")
    return backend if isinstance(backend, dict) else None


def _human(nbytes: int) -> str:
    value = float(nbytes)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return (
                f"{int(value)} {unit}"
                if unit == "B"
                else f"{value:.1f} {unit}"
            )
        value /= 1024
    return f"{value:.1f} GiB"


def render_report(
    cache_dir: Optional[pathlib.Path] = None,
    manifest_path: Optional[pathlib.Path] = None,
) -> str:
    """Human-readable cache + artifact-counter report."""
    root = cache_root(cache_dir)
    report = scan(root)
    lines = [f"cache root: {root}"]
    total_files = total_bytes = 0
    for stats in report.values():
        total_files += stats.files
        total_bytes += stats.bytes
        age = (
            f", oldest {stats.oldest_age_s / 86400:.1f}d"
            if stats.files
            else ""
        )
        lines.append(
            f"  {stats.name:<10} {stats.files:>5} files  "
            f"{_human(stats.bytes):>10}{age}"
        )
    lines.append(
        f"  {'total':<10} {total_files:>5} files  "
        f"{_human(total_bytes):>10}"
    )
    counters = artifact_counters(manifest_path)
    if counters:
        lines.append("last run artifact counters (manifest schema >= 4):")
        for name, value in sorted(counters.items()):
            lines.append(f"  {name:<20} {value}")
    else:
        lines.append(
            "no artifact counters (no schema-4 run manifest found)"
        )
    batches = batch_totals(manifest_path)
    if batches is not None:
        lines.append("last run batch dispatch (manifest schema 5):")
        for name in ("batches", "batch_points", "shm_segments_cleaned"):
            lines.append(f"  {name:<20} {batches[name]}")
    backend = backend_totals(manifest_path)
    if backend is not None:
        lines.append(
            f"last run execution backend (manifest schema 6): "
            f"{backend.get('name', '?')}"
            + (
                f", degraded to local x{backend['degraded']}"
                if backend.get("degraded")
                else ""
            )
        )
        totals = backend.get("totals") or {}
        for name, value in sorted(totals.items()):
            lines.append(f"  {name:<20} {value}")
        workers = backend.get("workers") or {}
        for worker_id in sorted(workers):
            record = workers[worker_id]
            jobs = record.get("jobs_done", 0)
            reclaimed = record.get("leases_reclaimed", 0)
            lines.append(
                f"  worker {worker_id:<16} jobs_done={jobs} "
                f"leases_reclaimed={reclaimed}"
            )
    return "\n".join(lines)
