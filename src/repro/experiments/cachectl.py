"""Housekeeping for the on-disk cache (``repro cache``).

The experiment cache root (``results/.cache/`` or ``REPRO_CACHE_DIR``)
accumulates four kinds of state:

* ``results`` -- cached job result JSONs in the cache root (the result
  cache, keyed by job fingerprint);
* ``runs``    -- per-run checkpoint journals (``runs/<run-id>.jsonl``);
* ``traces``  -- captured instruction traces (``traces/<key>.trace``);
* ``preps``   -- persisted replay-prep slices (``preps/<key>.prep``):
  the derived predictor/cache/BTB layers one trace replay needs,
  shared across workers, runs and hosts (see
  :mod:`repro.uarch.replay_vec`);
* ``profiles`` -- TRAIN branch traces and measured profiles
  (``profiles/<key>.btrace`` / ``.json``);
* ``batches``  -- per-batch envelope spools (``batches/<nonce>.jsonl``);
  normally deleted the moment a batch settles, so anything found here
  is the residue of a run that died mid-flight;
* ``queue``    -- queue-backend run directories (``queue/<run-id>/``:
  pending/claimed/done job records, leases, worker health); removed
  when a run closes cleanly, so leftovers are the residue of a run
  that died mid-flight;
* ``quarantine`` -- artifacts that failed integrity validation.

Everything here is derived state: deleting any of it costs recompute
time, never correctness (content addressing recaptures on demand).
:func:`scan` sizes each section; :func:`prune` applies an age cutoff
and/or a total size budget (oldest files evicted first).  Store-layer
``.sum`` digest sidecars (:mod:`.store`) are handled as part of their
blob: a blob entry's size includes its sidecar, pruning a blob
removes the sidecar with it, and a sidecar whose blob is already gone
(orphaned by pre-fix prunes) is listed -- and prunable -- on its own.
Only regular files are ever entries: the ``queue`` section's
recursive glob walks run *directories*, which are never counted and
never unlinked.  :func:`verify` offline re-hashes every sidecarred
blob (``repro cache verify``);
:func:`artifact_counters` reads the hit/miss counters a schema>=4 run
manifest aggregated; :func:`batch_totals` reads the schema-5 batch
and shared-memory accounting; :func:`backend_totals` reads the
schema-6 execution-backend health block (lease/failover counters,
per-worker records).
"""

from __future__ import annotations

import json
import os
import pathlib
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: section name -> (subdirectory or "" for the cache root, glob pattern).
SECTIONS: Tuple[Tuple[str, str, str], ...] = (
    ("results", "", "*.json"),
    ("runs", "runs", "*.jsonl"),
    ("traces", "traces", "*.trace"),
    ("preps", "preps", "*.prep"),
    ("profiles", "profiles", "*"),
    ("batches", "batches", "*.jsonl"),
    ("queue", "queue", "**/*"),
    ("quarantine", "quarantine", "*"),
)


def cache_root(cache_dir: Optional[pathlib.Path] = None) -> pathlib.Path:
    if cache_dir is not None:
        return pathlib.Path(cache_dir)
    from .engine import RESULTS_DIR

    return pathlib.Path(
        os.environ.get("REPRO_CACHE_DIR", "") or RESULTS_DIR / ".cache"
    )


@dataclass
class SectionStats:
    name: str
    files: int = 0
    bytes: int = 0
    oldest_age_s: float = 0.0
    #: (mtime, size, path) per file, for prune ordering.
    entries: List[Tuple[float, int, pathlib.Path]] = field(
        default_factory=list
    )


def _sidecar_suffix() -> str:
    from .store import FileStore

    return FileStore.SIDECAR_SUFFIX


def scan(
    cache_dir: Optional[pathlib.Path] = None,
    now: Optional[float] = None,
) -> Dict[str, SectionStats]:
    """Size every cache section (missing directories scan as empty).

    Entries are regular files only -- the ``queue`` section's
    recursive glob also walks run directories, which must never be
    counted (their inode sizes are not cache payload) nor handed to
    prune's ``unlink``.  A store-layer digest sidecar is not its own
    entry: its size is folded into its blob's entry so the pair is
    budgeted and pruned as a unit.  A sidecar whose blob is gone
    (orphaned by pre-fix prunes) *is* its own entry, so prune can
    finally collect it.
    """
    root = cache_root(cache_dir)
    now = time.time() if now is None else now
    suffix = _sidecar_suffix()
    report: Dict[str, SectionStats] = {}
    for name, subdir, pattern in SECTIONS:
        stats = SectionStats(name=name)
        directory = root / subdir if subdir else root
        if directory.is_dir():
            matches = set(directory.glob(pattern))
            if not pattern.endswith(suffix):
                # Narrow globs (``*.trace``) never see their blobs'
                # sidecars; include them so orphans cannot accumulate
                # invisibly forever.
                matches.update(directory.glob(pattern + suffix))
            for path in sorted(matches):
                if not path.is_file():
                    continue
                if path.name.endswith(suffix):
                    blob = path.parent / path.name[: -len(suffix)]
                    if blob.is_file():
                        continue  # accounted with its blob
                try:
                    stat = path.stat()
                except OSError:
                    continue
                size = stat.st_size
                if not path.name.endswith(suffix):
                    sidecar = path.parent / (path.name + suffix)
                    try:
                        if sidecar.is_file():
                            size += sidecar.stat().st_size
                    except OSError:
                        pass
                stats.files += 1
                stats.bytes += size
                stats.oldest_age_s = max(
                    stats.oldest_age_s, now - stat.st_mtime
                )
                stats.entries.append((stat.st_mtime, size, path))
        report[name] = stats
    return report


def prune(
    cache_dir: Optional[pathlib.Path] = None,
    max_age_days: Optional[float] = None,
    max_size_mb: Optional[float] = None,
    sections: Optional[Tuple[str, ...]] = None,
    now: Optional[float] = None,
) -> Dict[str, Tuple[int, int]]:
    """Delete cache files by age and/or total-size budget.

    Age first (anything older than ``max_age_days`` goes), then the
    size budget: if the survivors still exceed ``max_size_mb`` in
    total, the oldest files across all selected sections are evicted
    until the total fits.  Returns ``{section: (files, bytes)}``
    removed.  With neither limit set this is a no-op.
    """
    now = time.time() if now is None else now
    report = scan(cache_dir, now=now)
    selected = [
        stats
        for stats in report.values()
        if sections is None or stats.name in sections
    ]
    removed: Dict[str, Tuple[int, int]] = {
        stats.name: (0, 0) for stats in selected
    }
    survivors: List[Tuple[float, int, pathlib.Path, str]] = []
    for stats in selected:
        for mtime, size, path in stats.entries:
            age_days = (now - mtime) / 86400.0
            if max_age_days is not None and age_days > max_age_days:
                _remove(path, stats.name, size, removed)
            else:
                survivors.append((mtime, size, path, stats.name))
    if max_size_mb is not None:
        budget = int(max_size_mb * 1024 * 1024)
        total = sum(size for _, size, _, _ in survivors)
        survivors.sort()  # oldest first
        for _, size, path, section in survivors:
            if total <= budget:
                break
            _remove(path, section, size, removed)
            total -= size
    return removed


def _remove(
    path: pathlib.Path,
    section: str,
    size: int,
    removed: Dict[str, Tuple[int, int]],
) -> None:
    """Unlink one scan entry: the file plus -- when the entry is a
    store blob -- its digest sidecar, as a unit.  (``_remove`` used to
    unlink only the blob, stranding ``.sum`` sidecars that the narrow
    section globs then never matched again.)  ``size`` is the entry's
    scan size, which already includes the sidecar."""
    try:
        path.unlink()
    except OSError:
        return
    count = 1
    suffix = _sidecar_suffix()
    if not path.name.endswith(suffix):
        try:
            (path.parent / (path.name + suffix)).unlink()
            count += 1
        except OSError:
            pass
    files, nbytes = removed[section]
    removed[section] = (files + count, nbytes + size)


@dataclass
class VerifyReport:
    """Outcome of one offline integrity sweep (:func:`verify`)."""

    checked: int = 0
    ok: int = 0
    #: Blobs whose bytes no longer hash to their recorded digest.
    mismatched: List[pathlib.Path] = field(default_factory=list)
    #: Sidecars whose blob is gone entirely.
    orphaned: List[pathlib.Path] = field(default_factory=list)
    #: Store-section blobs with no sidecar (pre-sidecar writes,
    #: served unverified by the store -- worth knowing about).
    unverified: int = 0
    #: Mismatched blobs moved aside (``quarantine=True`` only).
    quarantined: List[pathlib.Path] = field(default_factory=list)


#: Sections whose blobs the store layer writes with digest sidecars;
#: :func:`verify` also counts their sidecar-less blobs as unverified.
_STORE_SECTIONS = ("traces", "preps", "profiles")


def verify(
    cache_dir: Optional[pathlib.Path] = None,
    quarantine: bool = False,
) -> VerifyReport:
    """Offline integrity sweep: re-hash every sidecarred blob under
    the cache root against its recorded digest (``repro cache
    verify``).

    The hot path only verifies a blob when something *reads* it; this
    walks everything at rest, so bit rot or a torn transfer on a
    shared cache is found before a run trips over it.  The digest
    check itself is the store layer's (:meth:`.store.FileStore.
    verify_blob`) -- one hashing discipline, two entry points.  With
    ``quarantine=True`` mismatched blobs move to ``quarantine/`` (and
    their sidecars are dropped) exactly as a verified read would have
    done; recompute stays transparent either way.
    """
    from .store import FileStore, quarantine_file

    root = cache_root(cache_dir)
    suffix = _sidecar_suffix()
    report = VerifyReport()
    if not root.is_dir():
        return report
    store = FileStore(root)
    quarantine_dir = root / "quarantine"
    for sidecar in sorted(root.rglob(f"*{suffix}")):
        if quarantine_dir in sidecar.parents or not sidecar.is_file():
            continue
        blob = sidecar.parent / sidecar.name[: -len(suffix)]
        name = blob.relative_to(root).as_posix()
        status = store.verify_blob(name)
        if status == "missing":
            report.orphaned.append(sidecar)
            continue
        report.checked += 1
        if status == "ok":
            report.ok += 1
        elif status == "mismatch":
            report.mismatched.append(blob)
            if quarantine:
                if quarantine_file(quarantine_dir, blob) is not None:
                    report.quarantined.append(blob)
                try:
                    sidecar.unlink()
                except OSError:
                    pass
    for section in _STORE_SECTIONS:
        directory = root / section
        if not directory.is_dir():
            continue
        for path in sorted(directory.iterdir()):
            if not path.is_file() or path.name.endswith(suffix):
                continue
            if not (path.parent / (path.name + suffix)).is_file():
                report.unverified += 1
    return report


def render_verify(report: VerifyReport) -> str:
    """Human-readable :func:`verify` outcome."""
    lines = [
        f"verified {report.checked} blobs: {report.ok} ok, "
        f"{len(report.mismatched)} mismatched"
        + (
            f" ({len(report.quarantined)} quarantined)"
            if report.quarantined
            else ""
        )
    ]
    for blob in report.mismatched:
        lines.append(f"  MISMATCH {blob}")
    if report.orphaned:
        lines.append(
            f"{len(report.orphaned)} orphaned sidecars (blob gone):"
        )
        for sidecar in report.orphaned:
            lines.append(f"  ORPHAN   {sidecar}")
    if report.unverified:
        lines.append(
            f"{report.unverified} blobs have no digest sidecar "
            "(pre-sidecar writes; served unverified)"
        )
    return "\n".join(lines)


def artifact_counters(
    manifest_path: Optional[pathlib.Path] = None,
) -> Optional[Dict[str, int]]:
    """The ``totals.artifacts`` counters of the last run manifest
    (schema >= 4), or ``None`` when absent/unreadable/older-schema."""
    if manifest_path is None:
        from .engine import RESULTS_DIR

        manifest_path = RESULTS_DIR / "run_manifest.json"
    try:
        manifest = json.loads(pathlib.Path(manifest_path).read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(manifest, dict) or manifest.get("schema", 0) < 4:
        return None
    artifacts = manifest.get("totals", {}).get("artifacts")
    return artifacts if isinstance(artifacts, dict) else None


def batch_totals(
    manifest_path: Optional[pathlib.Path] = None,
) -> Optional[Dict[str, int]]:
    """Schema-5 batch/shared-memory accounting of the last manifest:
    fused batch submissions, points run inside them, and shm segments
    unlinked at run end.  ``None`` for older manifests."""
    if manifest_path is None:
        from .engine import RESULTS_DIR

        manifest_path = RESULTS_DIR / "run_manifest.json"
    try:
        manifest = json.loads(pathlib.Path(manifest_path).read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(manifest, dict) or manifest.get("schema", 0) < 5:
        return None
    totals = manifest.get("totals", {})
    return {
        name: totals.get(name, 0)
        for name in ("batches", "batch_points", "shm_segments_cleaned")
    }


def backend_totals(
    manifest_path: Optional[pathlib.Path] = None,
) -> Optional[Dict]:
    """Schema-6 execution-backend block of the last manifest: which
    backend drove the run, how often it degraded to the local pool,
    the summed lease/completion/failover counters, and the per-worker
    health records.  ``None`` for older manifests."""
    if manifest_path is None:
        from .engine import RESULTS_DIR

        manifest_path = RESULTS_DIR / "run_manifest.json"
    try:
        manifest = json.loads(pathlib.Path(manifest_path).read_text())
    except (OSError, ValueError):
        return None
    if not isinstance(manifest, dict) or manifest.get("schema", 0) < 6:
        return None
    backend = manifest.get("backend")
    return backend if isinstance(backend, dict) else None


def _human(nbytes: int) -> str:
    value = float(nbytes)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return (
                f"{int(value)} {unit}"
                if unit == "B"
                else f"{value:.1f} {unit}"
            )
        value /= 1024
    return f"{value:.1f} GiB"


def render_report(
    cache_dir: Optional[pathlib.Path] = None,
    manifest_path: Optional[pathlib.Path] = None,
) -> str:
    """Human-readable cache + artifact-counter report."""
    root = cache_root(cache_dir)
    report = scan(root)
    lines = [f"cache root: {root}"]
    total_files = total_bytes = 0
    for stats in report.values():
        total_files += stats.files
        total_bytes += stats.bytes
        age = (
            f", oldest {stats.oldest_age_s / 86400:.1f}d"
            if stats.files
            else ""
        )
        lines.append(
            f"  {stats.name:<10} {stats.files:>5} files  "
            f"{_human(stats.bytes):>10}{age}"
        )
    lines.append(
        f"  {'total':<10} {total_files:>5} files  "
        f"{_human(total_bytes):>10}"
    )
    counters = artifact_counters(manifest_path)
    if counters:
        lines.append("last run artifact counters (manifest schema >= 4):")
        for name, value in sorted(counters.items()):
            lines.append(f"  {name:<20} {value}")
    else:
        lines.append(
            "no artifact counters (no schema-4 run manifest found)"
        )
    batches = batch_totals(manifest_path)
    if batches is not None:
        lines.append("last run batch dispatch (manifest schema 5):")
        for name in ("batches", "batch_points", "shm_segments_cleaned"):
            lines.append(f"  {name:<20} {batches[name]}")
    backend = backend_totals(manifest_path)
    if backend is not None:
        lines.append(
            f"last run execution backend (manifest schema 6): "
            f"{backend.get('name', '?')}"
            + (
                f", degraded to local x{backend['degraded']}"
                if backend.get("degraded")
                else ""
            )
        )
        totals = backend.get("totals") or {}
        for name, value in sorted(totals.items()):
            lines.append(f"  {name:<20} {value}")
        workers = backend.get("workers") or {}
        for worker_id in sorted(workers):
            record = workers[worker_id]
            jobs = record.get("jobs_done", 0)
            reclaimed = record.get("leases_reclaimed", 0)
            lines.append(
                f"  worker {worker_id:<16} jobs_done={jobs} "
                f"leases_reclaimed={reclaimed}"
            )
    return "\n".join(lines)
