"""Pluggable execution backends for the experiment engine.

The engine's generic driver (:meth:`.engine.ExperimentEngine.map`)
schedules jobs -- cache lookups, artifact-group leadership, retries
with backoff, journalling -- but delegates the *mechanics* of running
a submission to a :class:`Backend`:

* :class:`LocalPoolBackend` -- today's supervised
  ``ProcessPoolExecutor``/warm-worker plane, unchanged in behaviour:
  fused batch submissions, broken-pool detection and respawn, the
  per-job deadline watchdog that kills the pool and requeues innocent
  in-flight jobs at no attempt cost.
* :class:`QueueBackend` -- a multi-worker work queue over a shared
  directory (the same substrate ``REPRO_CACHE_DIR`` re-roots), built
  for partial failure:

  - **atomic claim**: a job is a file in ``pending/``; a worker owns
    it by ``os.replace``-ing it into ``claimed/`` -- exactly one
    claimer wins, on any POSIX filesystem.
  - **leases + heartbeats**: every claim writes a lease with a TTL
    (``REPRO_LEASE_TTL``); a renewal thread re-arms it at TTL/4 while
    the job runs, and each worker heartbeats a health record in
    ``workers/``.
  - **failover**: a claimed job whose lease expired (dead or
    partitioned host) is *reclaimed* -- atomically stolen back,
    attempt incremented, re-run by a live worker, up to the engine's
    retry budget.
  - **idempotent completion**: results are published with
    ``os.link`` into ``done/`` after an fsync -- the first durable
    result wins and duplicate completions are discarded, so a
    reclaimed job finishing twice can never double-count.
  - **circuit breaker**: when the queue is unreachable (worker
    respawn budget exhausted with no survivors, or repeated I/O
    errors on the shared directory) the backend raises
    :class:`BackendUnavailable` and the engine degrades the rest of
    the run to :class:`LocalPoolBackend`.

Queue directory layout (one run under ``<cache>/queue/<token>/``)::

    pending/<job>.job    picklable job record, awaiting a claimer
    claimed/<job>.job    owned by a worker (lease in leases/)
    leases/<job>.json    {"worker", "deadline_unix"}
    done/<job>.json      completion envelope (first link wins)
    workers/<id>.json    per-worker health heartbeat records
    tmp/                 staging for every atomic rename/link
    stop                 graceful-shutdown flag the parent writes

Because every queue worker roots its :class:`~.artifacts.
ArtifactStore` at the shared cache directory, the content-addressed
artifacts -- traces *and* the persisted replay-prep slices
(``preps/``) -- warm-start across hosts: the first worker anywhere in
the fleet to replay a ``(trace, predictor, config class)`` point pays
the prep build, and every other host attaches the digest-verified
slice from the shared store (the ``prep_builds``/``prep_hits``
counters in the manifest's artifact totals prove the single build).

Distributed fault kinds (:mod:`.faults`): ``lease_expire`` (worker
silently drops a claimed job), ``worker_vanish`` (``os._exit`` after
claim), ``stale_heartbeat`` (health record stops renewing),
``dup_complete`` (completion published twice); ``torn_put`` lives in
:mod:`.store`.

Environment knobs: ``REPRO_BACKEND`` (``local``/``queue``),
``REPRO_QUEUE_WORKERS`` (queue worker count, default = engine jobs),
``REPRO_LEASE_TTL`` (seconds, default 30), ``REPRO_QUEUE_POLL``
(poll interval, default 0.05), ``REPRO_QUEUE_GRACE_S`` (seconds the
parent waits for a first live worker, default 5).

Known limitation: the queue path does not enforce the engine's
per-job wall-clock timeout -- lease expiry is the liveness mechanism,
and a *hung* worker keeps renewing its lease.  ``REPRO_BACKEND=local``
retains the watchdog semantics.
"""

from __future__ import annotations

import abc
import json
import multiprocessing
import os
import pathlib
import pickle
import secrets
import shutil
import tempfile
import threading
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from . import faults

#: Recognised ``REPRO_BACKEND`` values.
BACKEND_NAMES = ("local", "queue")

#: Consecutive shared-directory I/O errors before the queue trips.
IO_ERROR_TRIP = 5


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    try:
        return float(raw) if raw else default
    except ValueError:
        return default


def env_backend() -> str:
    """``REPRO_BACKEND`` with validation (default ``local``)."""
    raw = os.environ.get("REPRO_BACKEND", "").strip().lower()
    if not raw:
        return "local"
    if raw not in BACKEND_NAMES:
        raise ValueError(
            f"REPRO_BACKEND={raw!r}; expected one of {BACKEND_NAMES}"
        )
    return raw


def lease_ttl() -> float:
    return max(0.05, _env_float("REPRO_LEASE_TTL", 30.0))


def queue_poll() -> float:
    return max(0.005, _env_float("REPRO_QUEUE_POLL", 0.05))


def queue_grace() -> float:
    return max(0.0, _env_float("REPRO_QUEUE_GRACE_S", 5.0))


def env_queue_workers(default: int) -> int:
    """Queue worker count; an explicit 0 means "spawn none, external
    ``repro worker`` processes will join" (the run degrades to the
    local pool if nobody heartbeats within the grace window)."""
    raw = os.environ.get("REPRO_QUEUE_WORKERS", "").strip()
    try:
        return max(0, int(raw)) if raw else max(1, default)
    except ValueError:
        return max(1, default)


class BackendUnavailable(RuntimeError):
    """The backend cannot make progress; the engine should degrade."""


@dataclass
class BackendEvent:
    """One settled submission, reported by :meth:`Backend.poll`.

    ``kind`` is ``"done"`` (envelope ready), ``"error"`` (deterministic
    failure outside the worker function, e.g. an unpicklable result),
    ``"infra"`` (infrastructure fault -- retried with the attempt
    charged), or ``"requeue"`` (innocent victim of a pool kill --
    retried at no attempt cost).
    """

    kind: str
    handle: Any
    envelope: Optional[Dict] = None
    fault: str = ""
    error: Optional[BaseException] = None
    #: Authoritative attempt number, when the backend retried
    #: internally (queue reclaims); ``None`` = submit-time attempt.
    attempt: Optional[int] = None


class Backend(abc.ABC):
    """Execution mechanics behind the engine's generic driver.

    The engine submits ``(ids, attempt)`` work units while
    :meth:`has_capacity` allows, then folds the :class:`BackendEvent`
    stream from :meth:`poll` back into job state.  Implementations own
    their worker lifecycle entirely (spawn, death detection, respawn,
    failover) and surface it through :meth:`health`.
    """

    name = "abstract"

    def batch_cap(self, requested: int) -> int:
        """Fused-batch size this backend wants (0 = per-point jobs)."""
        return requested

    @abc.abstractmethod
    def submit(
        self,
        ids: Sequence[int],
        attempt: int,
        worker,
        items: Sequence[tuple],
        spool: Optional[pathlib.Path],
    ) -> Optional[Any]:
        """Dispatch one submission; an opaque handle, or ``None`` when
        the backend cannot accept it right now (the engine re-offers
        it on a later pass)."""

    @abc.abstractmethod
    def poll(self) -> List[BackendEvent]:
        """Settled submissions since the last call (may block briefly).

        Raises :class:`BackendUnavailable` when the backend can no
        longer make progress at all.
        """

    @abc.abstractmethod
    def has_capacity(self) -> bool:
        """Whether :meth:`submit` would currently accept work."""

    @abc.abstractmethod
    def cancel(self) -> None:
        """Abandon outstanding work immediately (interrupt path)."""

    @abc.abstractmethod
    def close(self) -> None:
        """Graceful shutdown after the last event was consumed."""

    def health(self) -> Dict:
        """``{"name", "counters": {...}, "workers": {...}}``."""
        return {"name": self.name, "counters": {}, "workers": {}}


# -- local pool --------------------------------------------------------------


class LocalPoolBackend(Backend):
    """Supervised ``ProcessPoolExecutor`` execution (the default).

    Behaviour is the engine's historical parallel path, verbatim:
    fused batches, lazy pool (re)spawn, broken-pool drain (every
    future on a dead pool settles as a charged ``broken-pool`` infra
    fault), and the per-job deadline watchdog -- an expired submission
    is charged a ``timeout``, completed-in-the-meantime futures fold
    normally, and still-running innocents requeue uncharged while the
    pool is killed and respawned.
    """

    name = "local"

    def __init__(
        self,
        max_workers: int,
        job_timeout: Optional[float],
        worker_env: Dict[str, str],
    ) -> None:
        self.max_workers = max(1, max_workers)
        self.timeout = job_timeout
        self.worker_env = dict(worker_env)
        self.poll_s = (
            max(0.01, min(0.1, job_timeout / 5.0))
            if job_timeout
            else 0.1
        )
        self._pool = None
        #: future -> (deadline, label, points, attempt)
        self._meta: Dict[Any, tuple] = {}
        self.pool_respawns = 0

    def has_capacity(self) -> bool:
        return len(self._meta) < self.max_workers

    def submit(self, ids, attempt, worker, items, spool):
        from . import engine as _engine

        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor

            self._pool = ProcessPoolExecutor(
                max_workers=self.max_workers,
                initializer=_engine._pool_worker_init,
                initargs=(self.worker_env,),
            )
        try:
            if len(items) == 1:
                payload, label = items[0]
                future = self._pool.submit(
                    _engine._run_timed, worker, payload, label, attempt
                )
            else:
                label = items[0][1]
                future = self._pool.submit(
                    _engine._run_job_batch,
                    worker,
                    list(items),
                    attempt,
                    str(spool),
                )
        except Exception:
            # The pool broke between loops; kill it so outstanding
            # futures settle (as broken-pool infra faults on the next
            # poll) and let the engine re-offer this entry uncharged.
            self._respawn()
            return None
        deadline = (
            time.monotonic() + self.timeout * len(items)
            if self.timeout
            else None
        )
        self._meta[future] = (deadline, label, len(items), attempt)
        return future

    def _respawn(self) -> None:
        from . import engine as _engine

        if self._pool is not None:
            _engine._kill_pool(self._pool)
            self._pool = None
            self.pool_respawns += 1

    def _resolve(self, future, meta) -> BackendEvent:
        try:
            envelope = future.result()
        except (BrokenProcessPool, CancelledError) as exc:
            return BackendEvent(
                "infra", future, fault="broken-pool", error=exc
            )
        except Exception as exc:
            # e.g. the envelope failed to unpickle: deterministic.
            return BackendEvent("error", future, error=exc)
        return BackendEvent("done", future, envelope=envelope)

    def poll(self) -> List[BackendEvent]:
        if not self._meta:
            return []
        done, _ = wait(
            set(self._meta),
            timeout=self.poll_s,
            return_when=FIRST_COMPLETED,
        )
        events: List[BackendEvent] = []
        broken = False
        for future in done:
            meta = self._meta.pop(future)
            event = self._resolve(future, meta)
            broken = broken or event.fault == "broken-pool"
            events.append(event)
        if broken:
            # Every other future on the dead pool resolves
            # exceptionally as well; settle them all, then respawn.
            for future in list(self._meta):
                events.append(
                    self._resolve(future, self._meta.pop(future))
                )
            self._respawn()
            return events
        if self.timeout:
            now = time.monotonic()
            expired = {
                future
                for future, (deadline, _, _, _) in self._meta.items()
                if deadline is not None
                and now >= deadline
                and not future.done()
            }
            if expired:
                # The watchdog can only kill whole pools: expired
                # futures are charged a timeout, completed-in-the-
                # meantime ones fold normally, innocents requeue
                # uncharged.
                for future in list(self._meta):
                    deadline, label, points, attempt = self._meta.pop(
                        future
                    )
                    if future in expired:
                        exc = TimeoutError(
                            f"job {label!r} (batch of {points}) "
                            f"exceeded {self.timeout * points:g}s "
                            f"(attempt {attempt})"
                        )
                        events.append(
                            BackendEvent(
                                "infra",
                                future,
                                fault="timeout",
                                error=exc,
                            )
                        )
                    elif future.done():
                        events.append(self._resolve(future, None))
                    else:
                        events.append(BackendEvent("requeue", future))
                self._respawn()
        return events

    def cancel(self) -> None:
        from . import engine as _engine

        for future in self._meta:
            future.cancel()
        if self._pool is not None:
            _engine._kill_pool(self._pool)
            self._pool = None
        self._meta.clear()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def health(self) -> Dict:
        return {
            "name": self.name,
            "counters": {"pool_respawns": self.pool_respawns},
            "workers": {},
        }


# -- shared-directory queue --------------------------------------------------


class QueuePaths:
    """Directory layout of one queue run (see the module docstring)."""

    def __init__(self, run_dir: pathlib.Path) -> None:
        self.run_dir = pathlib.Path(run_dir)
        self.pending = self.run_dir / "pending"
        self.claimed = self.run_dir / "claimed"
        self.leases = self.run_dir / "leases"
        self.done = self.run_dir / "done"
        self.workers = self.run_dir / "workers"
        self.tmp = self.run_dir / "tmp"
        self.stop = self.run_dir / "stop"
        self.meta = self.run_dir / "meta.json"

    def create(self) -> None:
        for sub in (
            self.pending, self.claimed, self.leases,
            self.done, self.workers, self.tmp,
        ):
            sub.mkdir(parents=True, exist_ok=True)


def _atomic_json(paths: QueuePaths, path: pathlib.Path, obj: Dict) -> None:
    """Durable JSON write via the run's tmp/ staging directory."""
    fd, tmp = tempfile.mkstemp(dir=paths.tmp)
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(obj, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _read_json(path: pathlib.Path) -> Optional[Dict]:
    try:
        obj = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    return obj if isinstance(obj, dict) else None


def _write_job(paths: QueuePaths, path: pathlib.Path, record: Dict) -> None:
    """Durable pickle write of one job record."""
    blob = pickle.dumps(record)
    fd, tmp = tempfile.mkstemp(dir=paths.tmp)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _read_job(path: pathlib.Path) -> Optional[Dict]:
    try:
        record = pickle.loads(path.read_bytes())
    except Exception:
        return None
    return record if isinstance(record, dict) else None


def _publish(paths: QueuePaths, job_id: str, envelope: Dict,
             health: Dict) -> bool:
    """Idempotent completion: fsync'd temp file hard-linked into
    ``done/`` -- the link either creates the durable name (first
    result wins) or raises ``FileExistsError`` (duplicate discarded).
    """
    blob = (json.dumps(envelope) + "\n").encode()
    fd, tmp = tempfile.mkstemp(dir=paths.tmp)
    published = False
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        try:
            os.link(tmp, paths.done / f"{job_id}.json")
            published = True
        except FileExistsError:
            health["dup_discards"] = health.get("dup_discards", 0) + 1
    finally:
        try:
            os.unlink(tmp)
        except OSError:
            pass
    return published


def _release(paths: QueuePaths, job_id: str) -> None:
    """Drop a finished job's claim + lease (after its done/ link)."""
    for victim in (
        paths.claimed / f"{job_id}.job",
        paths.leases / f"{job_id}.json",
    ):
        try:
            victim.unlink()
        except OSError:
            pass


def _write_lease(paths: QueuePaths, job_id: str, worker_id: str,
                 ttl: float) -> None:
    _atomic_json(
        paths,
        paths.leases / f"{job_id}.json",
        {"worker": worker_id, "deadline_unix": time.time() + ttl},
    )


def _lease_deadline(paths: QueuePaths, job_id: str,
                    claimed: pathlib.Path, ttl: float) -> float:
    """When the claim on ``job_id`` expires.  A missing/torn lease
    falls back to the claimed file's mtime + TTL, so a worker that
    died between claim and lease-write is still reclaimable."""
    lease = _read_json(paths.leases / f"{job_id}.json")
    if lease is not None and isinstance(
        lease.get("deadline_unix"), (int, float)
    ):
        return float(lease["deadline_unix"])
    try:
        return claimed.stat().st_mtime + ttl
    except OSError:
        return 0.0


# -- queue worker (runs in its own process) ----------------------------------


def _exhausted_envelope(record: Dict) -> Dict:
    return {
        "status": "failed",
        "wall_s": 0.0,
        "error": {
            "type": "LeaseRetriesExhausted",
            "message": (
                f"job {record.get('label')!r} lost its lease "
                f"{record.get('attempt')} times; retry budget "
                f"({record.get('max_attempts')}) exhausted"
            ),
            "traceback": "",
        },
        "artifacts": None,
        "worker_pid": os.getpid(),
        "attempt": record.get("attempt", 0),
    }


def _claim_pending(paths: QueuePaths, worker_id: str,
                   ttl: float, health: Dict) -> Optional[Dict]:
    """Try to own the oldest pending job via atomic rename."""
    try:
        names = sorted(
            p.name for p in paths.pending.iterdir()
            if p.name.endswith(".job")
        )
    except OSError:
        return None
    for name in names:
        dst = paths.claimed / name
        try:
            os.replace(paths.pending / name, dst)
        except OSError:
            continue  # another worker won the claim
        job_id = name[: -len(".job")]
        _write_lease(paths, job_id, worker_id, ttl)
        health["leases_granted"] = health.get("leases_granted", 0) + 1
        record = _read_job(dst)
        if record is None:
            # Poison job file: publish a failure so the parent is
            # never left waiting on an unrunnable job.
            _publish(
                paths, job_id,
                {
                    "status": "failed",
                    "wall_s": 0.0,
                    "error": {
                        "type": "UnreadableJob",
                        "message": f"queue job {job_id} failed to "
                        "unpickle",
                        "traceback": "",
                    },
                    "artifacts": None,
                    "worker_pid": os.getpid(),
                },
                health,
            )
            _release(paths, job_id)
            continue
        return record
    return None


def _reclaim_expired(paths: QueuePaths, worker_id: str,
                     ttl: float, health: Dict) -> Optional[Dict]:
    """Steal one expired-lease job from a dead/partitioned owner.

    The steal is an atomic ``os.replace`` into tmp/ (two reclaimers
    cannot both win); the attempt is charged before the job re-enters
    ``claimed/`` under our lease, and a job whose budget is exhausted
    is settled with a failure envelope instead of looping forever.
    """
    try:
        entries = sorted(
            p for p in paths.claimed.iterdir()
            if p.name.endswith(".job")
        )
    except OSError:
        return None
    now = time.time()
    for claimed in entries:
        job_id = claimed.name[: -len(".job")]
        if (paths.done / f"{job_id}.json").exists():
            # Its owner completed but died before cleanup.
            _release(paths, job_id)
            continue
        if now < _lease_deadline(paths, job_id, claimed, ttl):
            continue
        steal = paths.tmp / f"steal-{job_id}-{secrets.token_hex(3)}"
        try:
            os.replace(claimed, steal)
        except OSError:
            continue  # another reclaimer won
        record = _read_job(steal)
        try:
            os.unlink(steal)
        except OSError:
            pass
        health["leases_reclaimed"] = (
            health.get("leases_reclaimed", 0) + 1
        )
        if record is None:
            _release(paths, job_id)
            continue
        record["attempt"] = record.get("attempt", 0) + 1
        if record["attempt"] > record.get("max_attempts", 2):
            _publish(paths, job_id, _exhausted_envelope(record), health)
            _release(paths, job_id)
            continue
        _write_job(paths, claimed, record)
        _write_lease(paths, job_id, worker_id, ttl)
        return record


def _run_claimed(paths: QueuePaths, record: Dict, worker_id: str,
                 ttl: float, health: Dict) -> None:
    """Run one owned job to durable completion (or inject its doom)."""
    from .engine import _run_timed

    job_id = record["job_id"]
    label = record.get("label", job_id)
    attempt = record.get("attempt", 0)
    if faults.should_vanish_worker(label, attempt):
        os._exit(faults.DIE_EXIT_STATUS)
    if faults.should_expire_lease(label, attempt):
        # Partitioned away: no renewal, no completion.  The claim and
        # its lease are left to expire; a live worker reclaims.
        health["leases_dropped"] = health.get("leases_dropped", 0) + 1
        return
    stop_renew = threading.Event()

    def renew() -> None:
        while not stop_renew.wait(max(0.02, ttl / 4.0)):
            try:
                _write_lease(paths, job_id, worker_id, ttl)
                health["lease_renewals"] = (
                    health.get("lease_renewals", 0) + 1
                )
            except OSError:
                pass

    renewer = threading.Thread(target=renew, daemon=True)
    renewer.start()
    try:
        envelope = _run_timed(
            record["worker"], record["payload"], label, attempt
        )
    finally:
        stop_renew.set()
        renewer.join()
    envelope["attempt"] = attempt
    envelope["queue_worker"] = worker_id
    _publish(paths, job_id, envelope, health)
    if faults.should_dup_complete(label):
        _publish(paths, job_id, envelope, health)
    _release(paths, job_id)
    health["jobs_done"] = health.get("jobs_done", 0) + 1


def queue_worker_main(
    run_dir,
    env: Optional[Dict[str, str]] = None,
    worker_id: Optional[str] = None,
    ttl: Optional[float] = None,
    poll_s: Optional[float] = None,
) -> int:
    """One queue worker: claim, run, complete, until told to stop.

    Runs in a child process of :class:`QueueBackend` or standalone on
    another host via ``repro worker <run-dir>`` -- the directory (on a
    shared filesystem) is the only coordination channel.  TTL/poll
    default from the run's ``meta.json``, then the environment.
    """
    from .engine import _pool_worker_init

    paths = QueuePaths(pathlib.Path(run_dir))
    meta = _read_json(paths.meta) or {}
    if ttl is None:
        ttl = float(meta.get("ttl", 0) or 0) or lease_ttl()
    if poll_s is None:
        poll_s = float(meta.get("poll", 0) or 0) or queue_poll()
    if worker_id is None:
        worker_id = f"w-{os.getpid():d}-{secrets.token_hex(2)}"
    _pool_worker_init(env or {})
    health: Dict = {
        "worker_id": worker_id,
        "pid": os.getpid(),
        "started_unix": time.time(),
        "jobs_done": 0,
    }
    stale = faults.should_stale_heartbeat(worker_id)
    health["stale_injected"] = bool(stale)
    last_beat = 0.0

    def beat(force: bool = False) -> None:
        nonlocal last_beat
        now = time.time()
        if not force:
            if stale and last_beat:
                return  # injected stale heartbeat: never renew
            if now - last_beat < max(0.02, ttl / 4.0):
                return
        health["heartbeat_unix"] = now
        try:
            _atomic_json(
                paths, paths.workers / f"{worker_id}.json", health
            )
        except OSError:
            return
        last_beat = now

    beat(force=True)
    while True:
        if paths.stop.exists():
            health["stopped_unix"] = time.time()
            beat(force=True)
            return 0
        beat()
        record = _claim_pending(paths, worker_id, ttl, health)
        if record is None:
            record = _reclaim_expired(paths, worker_id, ttl, health)
        if record is None:
            time.sleep(poll_s)
            continue
        _run_claimed(paths, record, worker_id, ttl, health)
        beat(force=stale is False)


def _worker_entry(run_dir: str, env: Dict[str, str], worker_id: str,
                  ttl: float, poll_s: float) -> None:
    """``multiprocessing.Process`` target for parent-spawned workers."""
    try:
        queue_worker_main(
            run_dir, env=env, worker_id=worker_id,
            ttl=ttl, poll_s=poll_s,
        )
    except KeyboardInterrupt:
        pass


class QueueBackend(Backend):
    """Lease-based multi-worker work queue over a shared directory.

    The parent side: writes job files into ``pending/``, reaps
    completion envelopes from ``done/``, keeps its spawned worker
    fleet alive (respawning dead processes within a budget), watches
    worker heartbeats for staleness, and trips
    :class:`BackendUnavailable` when the queue cannot make progress
    (no live workers left, or the shared directory keeps erroring).
    External workers started with ``repro worker <run-dir>`` join the
    same fleet; the parent only *requires* its own spawns.

    Submissions are per-point (``batch_cap`` 0): group fusing trades
    placement flexibility away, and a queue's unit of failover is the
    job.  The warm-artifact story survives because workers share the
    content-addressed store (and the shm plane on one host).
    """

    name = "queue"

    def __init__(
        self,
        queue_root: pathlib.Path,
        workers: int,
        retries: int,
        worker_env: Dict[str, str],
        ttl: Optional[float] = None,
        poll_s: Optional[float] = None,
        spawn_workers: bool = True,
    ) -> None:
        self.token = (
            time.strftime("%Y%m%d-%H%M%S") + "-" + secrets.token_hex(3)
        )
        self.paths = QueuePaths(pathlib.Path(queue_root) / self.token)
        self.paths.create()
        self.workers = max(0, workers)
        self.retries = max(0, retries)
        self.worker_env = dict(worker_env)
        self.ttl = ttl if ttl is not None else lease_ttl()
        self.poll_s = poll_s if poll_s is not None else queue_poll()
        self.grace_s = queue_grace()
        _atomic_json(
            self.paths, self.paths.meta,
            {
                "created_unix": time.time(),
                "parent_pid": os.getpid(),
                "ttl": self.ttl,
                "poll": self.poll_s,
            },
        )
        self.counters: Dict[str, int] = {
            "jobs_submitted": 0,
            "completions": 0,
            "worker_deaths": 0,
            "worker_respawns": 0,
            "stale_heartbeats": 0,
            "jobs_resubmitted": 0,
            "io_errors": 0,
        }
        self._seq = 0
        self._outstanding: Dict[str, bytes] = {}  # job_id -> record blob
        self._missing_polls: Dict[str, int] = {}
        self._procs: Dict[str, multiprocessing.Process] = {}
        self._stale_seen: set = set()
        self._respawn_budget = 2 * max(1, self.workers) + 2
        self._started = time.monotonic()
        self._stopping = False
        #: Set by a clean close() before the run dir is torn down.
        self._health_snapshot: Optional[Dict] = None
        if spawn_workers:
            for _ in range(self.workers):
                self._spawn()

    def _spawn(self) -> None:
        worker_id = f"w{len(self._procs)}-{secrets.token_hex(2)}"
        proc = multiprocessing.Process(
            target=_worker_entry,
            args=(
                str(self.paths.run_dir), self.worker_env, worker_id,
                self.ttl, self.poll_s,
            ),
            daemon=True,
        )
        proc.start()
        self._procs[worker_id] = proc

    def _io_error(self) -> None:
        self.counters["io_errors"] += 1
        if self.counters["io_errors"] >= IO_ERROR_TRIP:
            raise BackendUnavailable(
                f"queue directory {self.paths.run_dir} failed "
                f"{self.counters['io_errors']} operations"
            )

    def batch_cap(self, requested: int) -> int:
        return 0  # per-point jobs: failover granularity is the job

    def has_capacity(self) -> bool:
        return not self._stopping  # the directory buffers arbitrarily

    def submit(self, ids, attempt, worker, items, spool):
        payload, label = items[0]
        job_id = f"{self._seq:05d}-{secrets.token_hex(3)}"
        self._seq += 1
        record = {
            "job_id": job_id,
            "ids": list(ids),
            "label": label,
            "attempt": attempt,
            "max_attempts": attempt + self.retries,
            "worker": worker,
            "payload": payload,
        }
        blob = pickle.dumps(record)  # propagate pickling errors: they
        # are deterministic and the pool path would hit them too
        try:
            self._enqueue(job_id, blob)
        except OSError:
            self._io_error()
            return None
        self.counters["jobs_submitted"] += 1
        self._outstanding[job_id] = blob
        return job_id

    def _enqueue(self, job_id: str, blob: bytes) -> None:
        fd, tmp = tempfile.mkstemp(dir=self.paths.tmp)
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.paths.pending / f"{job_id}.job")
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def poll(self) -> List[BackendEvent]:
        events: List[BackendEvent] = []
        for job_id in list(self._outstanding):
            done_path = self.paths.done / f"{job_id}.json"
            envelope = _read_json(done_path)
            if envelope is None:
                continue
            del self._outstanding[job_id]
            self._missing_polls.pop(job_id, None)
            self.counters["completions"] += 1
            events.append(
                BackendEvent(
                    "done", job_id, envelope=envelope,
                    attempt=envelope.get("attempt"),
                )
            )
        self._tend_workers()
        if self._outstanding:
            self._resubmit_lost()
        if not events:
            time.sleep(self.poll_s)
        return events

    def _tend_workers(self) -> None:
        """Liveness + heartbeat accounting; trips the breaker when the
        fleet is gone and the respawn budget is spent."""
        for worker_id, proc in list(self._procs.items()):
            if proc.is_alive():
                continue
            del self._procs[worker_id]
            if self._stopping:
                continue
            self.counters["worker_deaths"] += 1
            if (
                self._outstanding
                and self.counters["worker_respawns"]
                < self._respawn_budget
            ):
                self.counters["worker_respawns"] += 1
                self._spawn()
        if self._outstanding and self.workers and not self._procs:
            raise BackendUnavailable(
                "queue backend has no live workers (respawn budget "
                f"{self._respawn_budget} exhausted)"
            )
        if (
            self._outstanding
            and not self.workers
            and time.monotonic() - self._started > self.grace_s
        ):
            # Spawnless run (external workers expected): nobody showed
            # up within the grace window.
            if not self._any_external_heartbeat():
                raise BackendUnavailable(
                    "queue backend saw no worker heartbeat within "
                    f"{self.grace_s:g}s grace"
                )
        now = time.time()
        for record_path in self._worker_records():
            record = _read_json(record_path) or {}
            worker_id = record.get("worker_id")
            beat = record.get("heartbeat_unix", 0.0)
            if (
                worker_id in self._procs
                and worker_id not in self._stale_seen
                and now - float(beat or 0.0) > 2.0 * self.ttl
            ):
                self._stale_seen.add(worker_id)
                self.counters["stale_heartbeats"] += 1

    def _worker_records(self) -> List[pathlib.Path]:
        try:
            return sorted(self.paths.workers.glob("*.json"))
        except OSError:
            return []

    def _any_external_heartbeat(self) -> bool:
        return bool(self._worker_records())

    def _resubmit_lost(self) -> None:
        """Safety net: a job that exists nowhere (not pending, not
        claimed, not done) was lost -- e.g. a reclaimer died inside
        its steal window.  Two consecutive sightings (the window
        between a steal and the rewrite is also file-less) trigger a
        resubmit; a duplicate completion is idempotently discarded."""
        for job_id, blob in list(self._outstanding.items()):
            present = (
                (self.paths.pending / f"{job_id}.job").exists()
                or (self.paths.claimed / f"{job_id}.job").exists()
                or (self.paths.done / f"{job_id}.json").exists()
            )
            if present:
                self._missing_polls.pop(job_id, None)
                continue
            seen = self._missing_polls.get(job_id, 0) + 1
            self._missing_polls[job_id] = seen
            if seen >= 2:
                try:
                    self._enqueue(job_id, blob)
                except OSError:
                    self._io_error()
                    continue
                self.counters["jobs_resubmitted"] += 1
                self._missing_polls.pop(job_id, None)

    def _signal_stop(self) -> None:
        self._stopping = True
        try:
            self.paths.stop.touch()
        except OSError:
            pass

    def cancel(self) -> None:
        self._signal_stop()
        for proc in self._procs.values():
            try:
                proc.terminate()
            except Exception:
                pass
        for proc in self._procs.values():
            proc.join(timeout=1.0)
        self._procs.clear()

    def close(self) -> None:
        self._signal_stop()
        deadline = time.monotonic() + max(1.0, self.ttl / 2.0)
        for proc in self._procs.values():
            proc.join(timeout=max(0.1, deadline - time.monotonic()))
        for proc in self._procs.values():
            if proc.is_alive():
                try:
                    proc.terminate()
                    proc.join(timeout=1.0)
                except Exception:
                    pass
        self._procs.clear()
        if not self._outstanding and self.workers:
            # Fully drained and nobody external may still be reading:
            # snapshot health (it reads worker records from the run
            # dir), then tear the run directory down.  Spawnless runs
            # keep theirs so external workers can notice the stop flag.
            self._health_snapshot = self.health()
            try:
                shutil.rmtree(self.paths.run_dir)
            except OSError:
                pass

    def health(self) -> Dict:
        if self._health_snapshot is not None:
            return self._health_snapshot
        workers: Dict[str, Dict] = {}
        totals = dict(self.counters)
        for record_path in self._worker_records():
            record = _read_json(record_path)
            if not record:
                continue
            worker_id = str(record.get("worker_id", record_path.stem))
            workers[worker_id] = record
            for key in (
                "jobs_done", "leases_granted", "lease_renewals",
                "leases_reclaimed", "leases_dropped", "dup_discards",
            ):
                value = record.get(key)
                if isinstance(value, (int, float)):
                    totals[key] = totals.get(key, 0) + value
        return {
            "name": self.name,
            "run_dir": str(self.paths.run_dir),
            "counters": totals,
            "workers": workers,
        }
