"""Regenerate the paper's Table 2: per-benchmark SPEC 2006 metrics, sorted
by speedup, 4-wide configuration.

Seed jobs share TRAIN profiles and captured traces through the artifact
store (see :mod:`.harness` / :mod:`.artifacts`), so re-running the table
after any sweep that covered the same programs is mostly replays."""

from __future__ import annotations

from typing import List, Optional

from ..analysis import TABLE2_HEADER, render_table
from ..workloads import BENCHMARKS
from .engine import ExperimentEngine, get_engine
from .harness import BenchmarkOutcome, RunConfig


def run(
    config: Optional[RunConfig] = None,
    engine: Optional[ExperimentEngine] = None,
) -> List[BenchmarkOutcome]:
    """All SPEC 2006 benchmarks (INT then FP), sorted by measured SPD
    within each half, matching the published table's layout."""
    config = config or RunConfig()
    engine = get_engine(engine)
    outcomes = []
    for suite in ("int2006", "fp2006"):
        part = engine.run_suite(suite, config)
        # Failed benchmarks (engine supervision recorded, not crashed)
        # sort to the bottom of their half.
        part.sort(
            key=lambda o: -o.metrics.spd if o.ok else float("inf")
        )
        outcomes.extend(part)
    return outcomes


def render(outcomes: List[BenchmarkOutcome]) -> str:
    rows = []
    failed_notes = []
    for o in outcomes:
        if o.ok:
            rows.append(o.metrics.row())
        else:
            rows.append(
                [o.name, o.status.upper()]
                + ["-"] * (len(TABLE2_HEADER) - 2)
            )
            failed_notes.append(f"{o.name}: {o.status} ({o.error})")
    measured = render_table(
        TABLE2_HEADER, rows, title="Table 2 (measured, this reproduction)"
    )
    if failed_notes:
        measured += "\nincomplete rows:\n" + "\n".join(
            f"  {note}" for note in failed_notes
        )
    paper_rows = []
    for o in outcomes:
        row = BENCHMARKS[o.name].paper
        paper_rows.append(
            [
                o.name,
                f"{row.spd:.1f}",
                f"{row.pbc:.1f}",
                f"{row.pdih:.1f}",
                f"{row.alpbb:.1f}",
                f"{row.aspcb:.1f}",
                f"{row.phi:.1f}",
                f"{row.mppki:.1f}",
                f"{row.piscs:.1f}",
            ]
        )
    published = render_table(
        TABLE2_HEADER, paper_rows, title="Table 2 (published)"
    )
    return measured + "\n\n" + published


def main() -> None:  # pragma: no cover - CLI entry
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
