"""Deterministic, seeded fault injection for the experiment engine.

The supervision layer in :mod:`.engine` has to survive worker crashes,
hung jobs, OOM-killed processes, and corrupted cache entries -- none of
which occur naturally in a deterministic simulator.  This module makes
every one of those paths exercisable on demand, *deterministically*:
whether a given job faults is a pure function of the fault plan's seed,
the fault kind, the job label, and the attempt number, so tests can
predict the exact set of injected failures without flaky sleeps or real
resource pressure.

Activate via the environment (which is how the switch reaches
``ProcessPoolExecutor`` workers)::

    REPRO_FAULT_INJECT="crash:0.2,hang:0.1,corrupt_cache:0.1@seed=7"

Kinds:

* ``crash``         -- the worker raises :class:`InjectedCrash`: a
  *deterministic* application failure (the engine records it, never
  retries it).
* ``die``           -- the worker process calls ``os._exit``: simulates
  an OOM kill; surfaces as ``BrokenProcessPool``, an *infrastructure*
  fault the engine retries.
* ``hang``          -- the worker sleeps ``REPRO_FAULT_HANG_S`` seconds
  (default 3600): exercises the per-job timeout watchdog.  On the
  serial (``jobs=1``) path, where no watchdog can interrupt the main
  process, it degrades to raising :class:`InjectedHang` immediately,
  which the engine records as a ``timeout``.
* ``corrupt_cache`` -- the engine writes a truncated cache entry for
  the job: exercises cache validation + quarantine on the next read.
* ``corrupt_trace`` -- the artifact store writes a truncated trace
  container (:mod:`.artifacts`): exercises trace checksum validation,
  quarantine, and transparent recapture on the next load.
* ``shm_leak``      -- the shared-memory trace plane (:mod:`.plane`)
  abandons an extra never-ready segment next to a published one:
  simulates a worker killed between creating and filling a segment,
  and exercises the engine's run-end ``/dev/shm`` sweep.
* ``batch_die``     -- the worker process calls ``os._exit`` *between
  points of a fused batch*: simulates a mid-batch OOM kill and
  exercises spool recovery (completed points absorbed, only the
  unfinished remainder retried).
* ``fused_diverge`` -- the sweep-fused replay pass
  (:mod:`repro.uarch.replay_multi`) corrupts one seeded config lane's
  stat accumulators right before lane validation: exercises
  divergence detection, the automatic per-point fallback, and the
  ``fused_diverges`` artifact counter that surfaces the degradation
  in the run manifest.

Distributed kinds (exercised by the queue backend in
:mod:`.backends`):

* ``lease_expire``    -- a queue worker silently drops its lease for a
  claimed job (no renewal, no completion): simulates a host losing its
  lease to a network partition, and exercises expired-lease reclaim by
  a live worker.
* ``worker_vanish``   -- a queue worker process ``os._exit``\\ s after
  claiming a job but before completing it: simulates a dead host whose
  claimed work must fail over to the survivors.
* ``stale_heartbeat`` -- a queue worker stops renewing its heartbeat
  (the health record goes stale) while still finishing its current
  job: exercises the stale-worker accounting in per-worker health
  without losing work.
* ``torn_put``        -- the blob store (:mod:`.store`) truncates a
  transfer *after* recording its digest: exercises digest verification,
  quarantine, and recapture on the next read.
* ``dup_complete``    -- a queue worker publishes its completion
  *twice*: exercises first-durable-result-wins idempotence (the
  duplicate must be discarded, not double-counted).

Decisions are independent per kind.  ``crash``/``die``/``hang``/
``batch_die``/``lease_expire``/``worker_vanish`` hash the attempt
number too, so a retried job may (deterministically) succeed on a
later attempt; ``corrupt_cache``/``corrupt_trace``/``shm_leak``/
``fused_diverge``/``stale_heartbeat``/``torn_put``/``dup_complete``
are attempt-independent.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

#: Recognised fault kinds (see the module docstring).
FAULT_KINDS = (
    "crash",
    "die",
    "hang",
    "corrupt_cache",
    "corrupt_trace",
    "shm_leak",
    "batch_die",
    "fused_diverge",
    "lease_expire",
    "worker_vanish",
    "stale_heartbeat",
    "torn_put",
    "dup_complete",
)

#: Environment variable holding the fault plan ("" / unset = no faults).
ENV_VAR = "REPRO_FAULT_INJECT"

#: How long an injected hang sleeps (seconds); tests pair a small
#: ``REPRO_JOB_TIMEOUT`` with the large default so the watchdog always
#: fires first.
HANG_ENV_VAR = "REPRO_FAULT_HANG_S"
DEFAULT_HANG_S = 3600.0

#: Exit status an injected ``die`` uses (mirrors a SIGKILL-style death
#: as far as ``ProcessPoolExecutor`` is concerned: the pool breaks).
DIE_EXIT_STATUS = 3


class InjectedCrash(RuntimeError):
    """Deterministic worker failure injected by the fault harness."""


class InjectedHang(RuntimeError):
    """Serial-path stand-in for a hung worker (recorded as a timeout)."""


@dataclass(frozen=True)
class FaultPlan:
    """Parsed ``REPRO_FAULT_INJECT`` specification."""

    rates: Dict[str, float] = field(default_factory=dict)
    seed: int = 0

    @property
    def active(self) -> bool:
        return any(rate > 0.0 for rate in self.rates.values())

    def decide(self, kind: str, label: str, attempt: int = 0) -> bool:
        """Deterministically decide whether ``kind`` fires for this job.

        A SHA-256 over (seed, kind, label, attempt) is mapped to a
        uniform value in [0, 1) and compared against the kind's rate --
        the same inputs always produce the same decision, in any
        process, on any platform.
        """
        rate = self.rates.get(kind, 0.0)
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        blob = f"{self.seed}|{kind}|{label}|{attempt}".encode()
        digest = hashlib.sha256(blob).digest()
        uniform = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return uniform < rate

    def spec(self) -> str:
        """Round-trippable textual form (for manifests/logs)."""
        rates = ",".join(
            f"{kind}:{rate:g}" for kind, rate in sorted(self.rates.items())
        )
        return f"{rates}@seed={self.seed}"


def parse_plan(text: Optional[str]) -> Optional[FaultPlan]:
    """Parse ``"crash:0.2,hang:0.1@seed=7"``; None/"" means no plan.

    Raises ``ValueError`` on unknown kinds or malformed rates so a typo
    in ``REPRO_FAULT_INJECT`` fails loudly instead of silently running
    fault-free.
    """
    if not text or not text.strip():
        return None
    body, seed = text.strip(), 0
    if "@" in body:
        body, _, tail = body.partition("@")
        key, _, value = tail.partition("=")
        if key.strip() != "seed":
            raise ValueError(f"bad fault-plan modifier {tail!r}")
        seed = int(value)
    rates: Dict[str, float] = {}
    for clause in body.split(","):
        clause = clause.strip()
        if not clause:
            continue
        kind, sep, rate_text = clause.partition(":")
        kind = kind.strip()
        if not sep or kind not in FAULT_KINDS:
            raise ValueError(
                f"bad fault clause {clause!r}; kinds: {FAULT_KINDS}"
            )
        rate = float(rate_text)
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"fault rate out of [0,1]: {clause!r}")
        rates[kind] = rate
    if not rates:
        raise ValueError(f"empty fault plan {text!r}")
    return FaultPlan(rates=rates, seed=seed)


def plan_from_env() -> Optional[FaultPlan]:
    return parse_plan(os.environ.get(ENV_VAR))


def hang_seconds() -> float:
    raw = os.environ.get(HANG_ENV_VAR, "").strip()
    return float(raw) if raw else DEFAULT_HANG_S


def inject_worker_faults(
    label: str, attempt: int, in_process: bool = False
) -> None:
    """Apply worker-side faults for this (label, attempt), if any.

    Called at the top of every engine job.  ``in_process`` marks the
    serial path, where ``die`` must not take the caller down (it
    degrades to :class:`InjectedCrash`) and ``hang`` cannot be
    interrupted by the watchdog (it degrades to :class:`InjectedHang`).
    """
    plan = plan_from_env()
    if plan is None or not plan.active:
        return
    if plan.decide("die", label, attempt):
        if in_process:
            raise InjectedCrash(
                f"injected die (serial degradation) in {label!r} "
                f"attempt {attempt}"
            )
        os._exit(DIE_EXIT_STATUS)
    if plan.decide("hang", label, attempt):
        if in_process:
            raise InjectedHang(
                f"injected hang (serial degradation) in {label!r} "
                f"attempt {attempt}"
            )
        time.sleep(hang_seconds())
    if plan.decide("crash", label, attempt):
        raise InjectedCrash(
            f"injected crash in {label!r} attempt {attempt}"
        )


def should_corrupt_cache(label: str) -> bool:
    """Parent-side decision: corrupt this job's cache entry on store?"""
    plan = plan_from_env()
    return plan is not None and plan.decide("corrupt_cache", label)


def should_corrupt_trace(key: str) -> bool:
    """Store-side decision: truncate this trace artifact on write?"""
    plan = plan_from_env()
    return plan is not None and plan.decide("corrupt_trace", key)


def should_leak_shm(key: str) -> bool:
    """Plane-side decision: abandon a stray segment for this trace?"""
    plan = plan_from_env()
    return plan is not None and plan.decide("shm_leak", key)


def should_batch_die(label: str, attempt: int) -> bool:
    """Batch-runner decision: ``os._exit`` before this batch point?

    Unlike ``die`` (which fires at the top of a job), ``batch_die`` is
    checked by the fused batch runner between points, *after* earlier
    points have spooled their envelopes -- the partial-progress case
    the recovery path exists for.
    """
    plan = plan_from_env()
    return plan is not None and plan.decide("batch_die", label, attempt)


def fuse_diverge_lane(label: str, lanes: int) -> Optional[int]:
    """Fused-replay decision: corrupt one lane of this fused pass?

    Returns the seed-chosen lane index to corrupt, or ``None`` when
    the fault does not fire.  Attempt-independent, like the other
    data-corruption kinds: a fused pass over the same trace and sweep
    always diverges (and always on the same lane), so the per-point
    fallback -- not a retry of the fused pass -- is what restores the
    results.
    """
    plan = plan_from_env()
    if plan is None or lanes <= 0:
        return None
    if not plan.decide("fused_diverge", label):
        return None
    blob = f"{plan.seed}|fused_diverge_lane|{label}".encode()
    digest = hashlib.sha256(blob).digest()
    return int.from_bytes(digest[:8], "big") % lanes


def should_expire_lease(label: str, attempt: int) -> bool:
    """Queue-worker decision: drop the lease on this claimed job?

    The worker abandons the job without completing or renewing -- from
    the queue's point of view the host partitioned away.  A live
    worker reclaims the job once the lease TTL passes.
    """
    plan = plan_from_env()
    return plan is not None and plan.decide(
        "lease_expire", label, attempt
    )


def should_vanish_worker(label: str, attempt: int) -> bool:
    """Queue-worker decision: ``os._exit`` after claiming this job?"""
    plan = plan_from_env()
    return plan is not None and plan.decide(
        "worker_vanish", label, attempt
    )


def should_stale_heartbeat(worker_id: str) -> bool:
    """Queue-worker decision: stop renewing this worker's heartbeat?"""
    plan = plan_from_env()
    return plan is not None and plan.decide(
        "stale_heartbeat", worker_id
    )


def should_tear_put(name: str) -> bool:
    """Store-side decision: truncate this blob after digesting it?"""
    plan = plan_from_env()
    return plan is not None and plan.decide("torn_put", name)


def should_dup_complete(label: str) -> bool:
    """Queue-worker decision: publish this completion twice?"""
    plan = plan_from_env()
    return plan is not None and plan.decide("dup_complete", label)
