"""Text renderers for regenerated tables and figures.

The paper's figures are bar charts of per-benchmark % speedups; a terminal
bar chart carries the same information (who wins, by how much, where the
crossovers are), which is what the reproduction is graded on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple


def render_table(
    header: Sequence[str], rows: Sequence[Sequence[str]], title: str = ""
) -> str:
    """Fixed-width table with right-aligned numeric columns."""
    columns = len(header)
    widths = [len(h) for h in header]
    for row in rows:
        for i in range(columns):
            widths[i] = max(widths[i], len(str(row[i])))

    def fmt(cells: Sequence[str]) -> str:
        parts = [str(cells[0]).ljust(widths[0])]
        parts.extend(str(c).rjust(w) for c, w in zip(cells[1:], widths[1:]))
        return "  ".join(parts)

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(header))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def render_bars(
    values: Sequence[Tuple[str, float]],
    title: str = "",
    unit: str = "%",
    width: int = 48,
) -> str:
    """Horizontal bar chart (one bar per benchmark), paper-figure style."""
    lines = [title] if title else []
    if not values:
        return title
    peak = max(abs(v) for _, v in values) or 1.0
    for name, value in values:
        bar = "#" * max(0, round(abs(value) / peak * width))
        sign = "-" if value < 0 else ""
        lines.append(f"{name:<12} {sign}{bar} {value:.1f}{unit}")
    return "\n".join(lines)


def render_series(
    series: Dict[str, Sequence[float]],
    x_label: str = "rank",
    title: str = "",
    points: Optional[Sequence] = None,
) -> str:
    """Numeric multi-series dump (for the Figure 2/3 curves)."""
    lines = [title] if title else []
    names = list(series)
    n = min(len(s) for s in series.values())
    xs = points if points is not None else range(n)
    lines.append("  ".join([x_label.ljust(6)] + [name.rjust(14) for name in names]))
    for i, x in enumerate(xs):
        if i >= n:
            break
        row = [str(x).ljust(6)]
        row.extend(f"{series[name][i]:14.4f}" for name in names)
        lines.append("  ".join(row))
    return "\n".join(lines)
