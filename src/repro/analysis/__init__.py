"""Metric extraction (Table 2 columns) and table/figure text rendering."""

from .metrics import (
    BenchmarkMetrics,
    TABLE2_HEADER,
    geomean_speedup,
    hoistable_fraction,
    issued_increase_percent,
    pdih_percent,
    phi_percent,
    speedup_percent,
    static_alpbb,
)
from .report import render_bars, render_series, render_table

__all__ = [
    "BenchmarkMetrics",
    "TABLE2_HEADER",
    "geomean_speedup",
    "hoistable_fraction",
    "issued_increase_percent",
    "pdih_percent",
    "phi_percent",
    "render_bars",
    "render_series",
    "render_table",
    "speedup_percent",
    "static_alpbb",
]
