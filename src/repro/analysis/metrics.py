"""Metric extraction: every column of the paper's Table 2.

* **SPD**    -- % cycle speedup of the decomposed binary over baseline.
* **PBC**    -- % of static forward branches converted.
* **PDIH**   -- % of dynamic instructions that were hoisted above a
  converted branch (committed instructions carrying the ``hoisted`` mark).
* **ALPBB**  -- average loads per basic block (static, over the baseline).
* **ASPCB**  -- average stall cycles per converted branch (back-end
  queueing delay of resolution points, measured on the baseline).
* **PHI**    -- average % of a candidate branch's succeeding block that is
  hoistable (via the same legality analysis the transformation uses).
* **MPPKI**  -- branch mispredictions per thousand committed instructions.
* **PISCS**  -- % increase in static code size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from ..compiler import CompilationResult
from ..ir import Function, available_above
from ..uarch import SimulationResult


def static_alpbb(func: Function) -> float:
    """Average loads per basic block, excluding empty blocks."""
    counts = []
    for block in func.blocks.values():
        if len(block) == 0:
            continue
        counts.append(sum(1 for inst in block.body if inst.is_load))
    return sum(counts) / len(counts) if counts else 0.0


def hoistable_fraction(func: Function, block_name: str) -> float:
    """Fraction of ``block_name``'s body the transformation could hoist."""
    body = func.block(block_name).body
    if not body:
        return 0.0
    return len(available_above(body, set(range(64)))) / len(body)


def phi_percent(func: Function, candidate_blocks: Iterable[str]) -> float:
    """Table 2's PHI: mean hoistable % over candidates' successor blocks."""
    fractions: List[float] = []
    for name in candidate_blocks:
        block = func.block(name)
        term = block.terminator
        if term is None:
            continue
        for succ in (term.target, block.fallthrough):
            if isinstance(succ, str):
                fractions.append(hoistable_fraction(func, succ))
    return 100.0 * sum(fractions) / len(fractions) if fractions else 0.0


def pdih_percent(result: SimulationResult) -> float:
    """% of committed dynamic instructions that were hoisted copies."""
    committed = result.stats.committed
    if not committed:
        return 0.0
    return 100.0 * result.stats.hoisted_committed / committed


def speedup_percent(baseline: SimulationResult, improved: SimulationResult) -> float:
    if not improved.cycles:
        return 0.0
    return 100.0 * (baseline.cycles / improved.cycles - 1.0)


def issued_increase_percent(
    baseline: SimulationResult, improved: SimulationResult
) -> float:
    """Figure 14: % increase in issued instructions (experimental vs
    baseline 4-wide)."""
    if not baseline.stats.issued:
        return 0.0
    return 100.0 * (improved.stats.issued / baseline.stats.issued - 1.0)


def geomean_speedup(percentages: Sequence[float]) -> float:
    """Geometric-mean % speedup of a set of per-benchmark % speedups."""
    if not percentages:
        return 0.0
    logs = [math.log(1.0 + p / 100.0) for p in percentages]
    return 100.0 * (math.exp(sum(logs) / len(logs)) - 1.0)


@dataclass
class BenchmarkMetrics:
    """One Table 2 row as measured by this reproduction."""

    name: str
    spd: float
    pbc: float
    pdih: float
    alpbb: float
    aspcb: float
    phi: float
    mppki: float
    piscs: float

    @classmethod
    def from_runs(
        cls,
        name: str,
        baseline_compile: CompilationResult,
        decomposed_compile: CompilationResult,
        baseline_run: SimulationResult,
        decomposed_run: SimulationResult,
        spd: Optional[float] = None,
    ) -> "BenchmarkMetrics":
        selection = decomposed_compile.selection
        transform = decomposed_compile.transform
        candidates = (
            [c.block for c in selection.candidates] if selection else []
        )
        return cls(
            name=name,
            spd=(
                spd
                if spd is not None
                else speedup_percent(baseline_run, decomposed_run)
            ),
            pbc=selection.pbc if selection else 0.0,
            pdih=pdih_percent(decomposed_run),
            alpbb=static_alpbb(baseline_compile.function),
            aspcb=baseline_run.stats.aspcb,
            phi=phi_percent(baseline_compile.function, candidates),
            mppki=baseline_run.stats.mppki,
            piscs=transform.pisc if transform else 0.0,
        )

    def row(self) -> List[str]:
        return [
            self.name,
            f"{self.spd:.1f}",
            f"{self.pbc:.1f}",
            f"{self.pdih:.1f}",
            f"{self.alpbb:.1f}",
            f"{self.aspcb:.1f}",
            f"{self.phi:.1f}",
            f"{self.mppki:.1f}",
            f"{self.piscs:.1f}",
        ]


TABLE2_HEADER = [
    "Name", "SPD", "PBC", "PDIH", "ALPBB", "ASPCB", "PHI", "MPPKI", "PISCS",
]
