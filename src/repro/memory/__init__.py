"""Cache/memory timing substrate: set-associative caches and the Table 1
hierarchy with miss-buffer limits."""

from .cache import Cache
from .hierarchy import HierarchyConfig, MemoryHierarchy

__all__ = ["Cache", "HierarchyConfig", "MemoryHierarchy"]
