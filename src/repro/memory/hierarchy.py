"""The Table 1 memory hierarchy.

* L1-D: 8-way 32 KB, 64 B lines, 4-cycle latency
* L1-I: 4-way 32 KB, 64 B lines, 4-cycle latency (hits are pipelined and
  charged as zero added front-end delay; misses pay the L2+ path)
* L2:   16-way 256 KB unified, 12-cycle latency
* L3:   32-way 4 MB, 25-cycle latency
* DRAM: 140-cycle latency
* 64-entry miss buffer bounds outstanding data misses (Table 1's Miss
  Buffer / Load Fill Request Queue pair, collapsed into one limit).

Latencies are load-to-use totals for a hit at that level, as Table 1 lists
them.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional

from .cache import Cache


@dataclass
class HierarchyConfig:
    l1d_bytes: int = 32 * 1024
    l1d_assoc: int = 8
    l1i_bytes: int = 32 * 1024
    l1i_assoc: int = 4
    l2_bytes: int = 256 * 1024
    l2_assoc: int = 16
    l3_bytes: int = 4 * 1024 * 1024
    l3_assoc: int = 32
    line_bytes: int = 64
    l1_latency: int = 4
    l2_latency: int = 12
    l3_latency: int = 25
    dram_latency: int = 140
    miss_buffer_entries: int = 64
    #: Simple next-line prefetch on L1-D misses, so sequential streams
    #: behave as they would on real hardware (stride-17 cold walks in the
    #: workloads deliberately defeat it).
    next_line_prefetch: bool = True


class MemoryHierarchy:
    """Assigns a completion time to each instruction/data access."""

    def __init__(self, config: Optional[HierarchyConfig] = None) -> None:
        self.config = config or HierarchyConfig()
        c = self.config
        self.l1d = Cache("L1D", c.l1d_bytes, c.l1d_assoc, c.line_bytes)
        self.l1i = Cache("L1I", c.l1i_bytes, c.l1i_assoc, c.line_bytes)
        self.l2 = Cache("L2", c.l2_bytes, c.l2_assoc, c.line_bytes)
        self.l3 = Cache("L3", c.l3_bytes, c.l3_assoc, c.line_bytes)
        self._outstanding: List[int] = []  # completion-time min-heap

    # -- internals ---------------------------------------------------------

    def _data_latency(self, byte_address: int) -> int:
        if self.l1d.access(byte_address):
            return self.config.l1_latency
        if self.l2.access(byte_address):
            return self.config.l2_latency
        if self.l3.access(byte_address):
            return self.config.l3_latency
        return self.config.dram_latency

    def _inst_latency(self, byte_address: int) -> int:
        if self.l1i.access(byte_address):
            return 0  # pipelined I$ hit: no added front-end delay
        if self.l2.access(byte_address):
            return self.config.l2_latency
        if self.l3.access(byte_address):
            return self.config.l3_latency
        return self.config.dram_latency

    def _miss_buffer_start(self, cycle: int) -> int:
        """Earliest cycle a new miss may begin, honouring the buffer limit."""
        heap = self._outstanding
        while heap and heap[0] <= cycle:
            heapq.heappop(heap)
        if len(heap) >= self.config.miss_buffer_entries:
            return heap[0]
        return cycle

    # -- public API ----------------------------------------------------------

    def access_data(self, byte_address: int, cycle: int) -> int:
        """Return the cycle the loaded value becomes available."""
        latency = self._data_latency(byte_address)
        if latency <= self.config.l1_latency:
            return cycle + latency
        if self.config.next_line_prefetch:
            next_line = byte_address + self.config.line_bytes
            self.l1d.install(next_line)
            self.l2.install(next_line)
        start = self._miss_buffer_start(cycle)
        done = start + latency
        heapq.heappush(self._outstanding, done)
        return done

    def access_inst(self, byte_address: int, cycle: int) -> int:
        """Return the cycle the fetched line is available to decode."""
        return cycle + self._inst_latency(byte_address)

    def data_miss_rate(self) -> float:
        return self.l1d.miss_rate

    def inst_miss_rate(self) -> float:
        return self.l1i.miss_rate

    def reset_stats(self) -> None:
        for cache in (self.l1d, self.l1i, self.l2, self.l3):
            cache.reset_stats()
        self._outstanding.clear()
