"""Set-associative cache with LRU replacement.

Timing-only: the functional value lives in :class:`repro.isa.Memory`; these
caches track tag state so the hierarchy can assign each access a latency.
"""

from __future__ import annotations

from typing import List


class Cache:
    """One cache level. Addresses are byte addresses."""

    def __init__(
        self,
        name: str,
        size_bytes: int,
        assoc: int,
        line_bytes: int = 64,
    ) -> None:
        if size_bytes % (assoc * line_bytes):
            raise ValueError(
                f"{name}: size {size_bytes} not divisible by "
                f"assoc*line ({assoc}*{line_bytes})"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_bytes = line_bytes
        # Non-power-of-two set counts are allowed (the Section 6.1 sweep
        # includes a 24 KB I-cache: 96 sets); indexing is by modulo.
        self.num_sets = size_bytes // (assoc * line_bytes)
        self._line_shift = line_bytes.bit_length() - 1
        # Per-set MRU-ordered tag lists (index 0 = most recent).
        self._sets: List[List[int]] = [[] for _ in range(self.num_sets)]
        self.accesses = 0
        self.hits = 0

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def access(self, byte_address: int) -> bool:
        """Touch the line holding ``byte_address``; True on hit.

        Misses allocate the line (write-allocate; fills are free in the
        timing model, consistent with the flat per-level latencies of
        Table 1).
        """
        line = byte_address >> self._line_shift
        index = line % self.num_sets
        tag = line // self.num_sets
        ways = self._sets[index]
        self.accesses += 1
        try:
            position = ways.index(tag)
        except ValueError:
            ways.insert(0, tag)
            if len(ways) > self.assoc:
                ways.pop()
            return False
        self.hits += 1
        if position:
            ways.insert(0, ways.pop(position))
        return True

    def install(self, byte_address: int) -> None:
        """Insert a line without touching the access statistics (used by
        the next-line prefetcher)."""
        line = byte_address >> self._line_shift
        index = line % self.num_sets
        tag = line // self.num_sets
        ways = self._sets[index]
        if tag in ways:
            return
        ways.insert(0, tag)
        if len(ways) > self.assoc:
            ways.pop()

    def probe(self, byte_address: int) -> bool:
        """Hit test with no state change (used by tests)."""
        line = byte_address >> self._line_shift
        index = line % self.num_sets
        tag = line // self.num_sets
        return tag in self._sets[index]

    def reset_stats(self) -> None:
        self.accesses = 0
        self.hits = 0
