#!/usr/bin/env python3
"""Issue-width sweep on one SPEC-like workload (the Figures 8/12 axis).

Simulates a benchmark's baseline and decomposed binaries on 2-, 4- and
8-wide in-order machines.  The paper finds the 4-wide benefits most: the
transformation can balance its functional-unit utilisation better than
the narrow 2-wide, while the 8-wide is rarely fully utilised anyway.

Run:  python examples/width_sweep.py [benchmark]
"""

import sys

from repro.analysis import render_table, speedup_percent
from repro.compiler import compile_baseline, compile_decomposed, profile_program
from repro.ir import lower
from repro.uarch import InOrderCore, MachineConfig
from repro.workloads import spec_benchmark


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "omnetpp"
    spec = spec_benchmark(name, iterations=500)

    train = spec.build(seed=0)
    ref = spec.build(seed=1)
    profile = profile_program(lower(train))
    baseline = compile_baseline(ref, profile=profile)
    decomposed = compile_decomposed(ref, profile=profile)
    print(
        f"{name}: converted "
        f"{decomposed.transform.converted}/{decomposed.selection.forward_branches} "
        f"forward branches"
    )

    rows = []
    for width in (2, 4, 8):
        machine = MachineConfig.paper_default(width)
        base_run = InOrderCore(machine).run(baseline.program)
        dec_run = InOrderCore(machine).run(decomposed.program)
        rows.append(
            [
                f"{width}-wide",
                str(base_run.cycles),
                str(dec_run.cycles),
                f"{base_run.ipc:.2f}",
                f"{speedup_percent(base_run, dec_run):.1f}",
            ]
        )
    print(
        render_table(
            ["machine", "baseline cyc", "decomposed cyc", "base IPC",
             "speedup %"],
            rows,
            title=f"Width sweep: {name}",
        )
    )


if __name__ == "__main__":
    main()
