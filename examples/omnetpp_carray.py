#!/usr/bin/env python3
"""The paper's Figure 6 walkthrough: transforming omnetpp's
``cArray::add(cObject*)``.

Shows the kernel before and after the Decomposed Branch Transformation --
the compare slice pushed into both resolution blocks, the ``items`` loads
hoisted above the resolves (marked ``+`` for non-faulting), stores left
below the resolution point, and the correction blocks at the end -- then
measures the cycle impact, which comes from overlapping block A's loads
with the loads of B and C that the original branch serialised.

Run:  python examples/omnetpp_carray.py
"""

from repro.compiler import compile_baseline, compile_decomposed
from repro.ir import lower
from repro.uarch import InOrderCore, MachineConfig
from repro.workloads import omnetpp_carray_add


def main() -> None:
    func = omnetpp_carray_add(iterations=2048)

    print("== original kernel (Figure 6a) ==")
    print(lower(func).disassemble())

    baseline = compile_baseline(func)
    decomposed = compile_decomposed(func, profile=baseline.profile)

    stats = decomposed.selection.candidates[0].stats
    print(
        f"\nprofiled branch: bias {stats.bias:.2f}, "
        f"predictability {stats.predictability:.2f} "
        f"(the paper quotes 60/40 bias, ~90% predictable)"
    )

    print("\n== transformed kernel (Figure 6b/6c) ==")
    print(decomposed.program.disassemble())

    machine = MachineConfig.paper_default()
    base_run = InOrderCore(machine).run(baseline.program)
    dec_run = InOrderCore(machine).run(decomposed.program)
    speedup = 100.0 * (base_run.cycles / dec_run.cycles - 1.0)
    print(f"\nbaseline:   {base_run.cycles} cycles (IPC {base_run.ipc:.2f})")
    print(f"decomposed: {dec_run.cycles} cycles (IPC {dec_run.ipc:.2f})")
    print(f"speedup:    {speedup:.1f}%")
    print(
        "architectural results identical:",
        base_run.memory_snapshot() == dec_run.memory_snapshot(),
    )


if __name__ == "__main__":
    main()
