#!/usr/bin/env python3
"""See the mechanism: issue timelines before and after decomposition.

Renders Gantt-style issue charts for a chase-heavy workload.  In the
baseline you can watch the branch (`bnz`) sit stalled on its condition
load while everything younger queues behind it; in the decomposed version
the hoisted loads (`[+,h]`) issue underneath the `resolve`'s wait.

Also runs the independent transformation verifier -- the checks a DBT
vendor would ship with this pass.

Run:  python examples/inspect_pipeline.py [benchmark]
"""

import sys

from repro.compiler import compile_baseline, compile_decomposed
from repro.core import verify
from repro.uarch import render_timeline
from repro.workloads import spec_benchmark


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "omnetpp"
    spec = spec_benchmark(name, iterations=300)
    func = spec.build(seed=1)
    baseline = compile_baseline(func)
    decomposed = compile_decomposed(func, profile=baseline.profile)

    # Skip past warm-up so the caches and predictor are in steady state.
    window = dict(start=2500, count=26)

    print(f"== {name}: baseline issue timeline ==")
    print(render_timeline(baseline.program, **window))

    print(f"\n== {name}: decomposed issue timeline ==")
    print("(hoisted instructions are tagged [h]; non-faulting loads [+])")
    print(render_timeline(decomposed.program, **window))

    print("\n== verifying the transformation ==")
    report = verify(func, decomposed.function)
    print(f"predict/resolve pairs checked: {report.predicts_checked}")
    if report.ok:
        print("structural invariants + differential execution: OK")
    else:  # pragma: no cover - would indicate a bug
        for error in report.errors:
            print(f"  FAIL: {error}")


if __name__ == "__main__":
    main()
