#!/usr/bin/env python3
"""The limits of the transformation: an mcf-style pointer chase.

SPEC's mcf has the *longest* resolution stalls in Table 2 (ASPCB 107) yet
one of the more modest speedups (8.1%), and the paper explains why: "a
large number of long latency misses which is difficult for the code
generator to cover with useful instructions".  When the branch condition
hangs off a serial pointer chase, there is nothing independent to hoist
over the miss -- the next chase step needs this step's data.

This kernel demonstrates that boundary: the guard branch is squarely in
the decomposable quadrant (62/38 bias, ~90% predictable) and converts,
but the speedup is near zero because the chase itself is the critical
path.  Contrast with examples/omnetpp_carray.py, where the hoisted loads
are independent of the condition and the gain is real.

Run:  python examples/mcf_pointer_chase.py
"""

from repro import quick_comparison
from repro.compiler import compile_baseline, compile_decomposed
from repro.workloads import MCF_SITE, mcf_pointer_chase


def main() -> None:
    func = mcf_pointer_chase(iterations=600)
    baseline = compile_baseline(func)
    decomposed = compile_decomposed(func, profile=baseline.profile)

    stats = decomposed.selection.candidates[0].stats
    print(
        f"guard branch: bias {stats.bias:.2f}, predictability "
        f"{stats.predictability:.2f} (design: {MCF_SITE.bias:.2f} / "
        f"{MCF_SITE.predictability:.2f}) -> converted"
    )

    outcome = quick_comparison(func, max_instructions=2_000_000)
    base = outcome.baseline
    print(
        f"\nbaseline IPC {base.ipc:.2f}; resolution stall per branch "
        f"{base.stats.aspcb:.0f} cycles (paper's mcf: 107)"
    )
    print(f"speedup from decomposition: {outcome.speedup_percent:.1f}%")
    print(
        "\nWhy so small despite the perfect-quadrant branch? The next\n"
        "chase step's address *is* this step's loaded data -- the miss\n"
        "chain is serial, so hoisting can overlap nothing with it. This\n"
        "is the paper's own explanation for mcf's modest gain, and the\n"
        "reason the workload calibration caps hoistable cold MLP when\n"
        "PDIH/PBC is thin (see DESIGN.md section 5)."
    )
    same = base.memory_snapshot() == outcome.decomposed.memory_snapshot()
    print(f"\narchitectural results identical: {same}")


if __name__ == "__main__":
    main()
