#!/usr/bin/env python3
"""Quickstart: decompose one predictable-but-unbiased branch and watch an
in-order superscalar get faster.

Builds the paper's Figure 5 scenario as a small workload -- a hammock whose
branch goes 60/40 but is ~95% predictable, guarded by a load-dependent
compare, with hoistable loads in both successors -- then compiles it twice
(baseline vs the Decomposed Branch Transformation) and simulates both on
the paper's 4-wide in-order machine (Table 1).

Run:  python examples/quickstart.py
"""

from repro import quick_comparison
from repro.compiler import compile_baseline, compile_decomposed
from repro.workloads import BranchSiteSpec, WorkloadSpec


def main() -> None:
    # A predictable (95%) but unbiased (60/40) forward branch: the exact
    # quadrant of Figure 1 the paper targets.
    spec = WorkloadSpec(
        name="quickstart",
        suite="demo",
        sites=[BranchSiteSpec(bias=0.6, predictability=0.95)],
        iterations=1500,
        loads_not_taken=4,
        loads_taken=4,
        loads_cond_block=1,
        hoist_barrier_frac=0.9,
        cold_code_factor=0.0,
    )
    func = spec.build(seed=1)

    print("== compiling ==")
    baseline = compile_baseline(func)
    decomposed = compile_decomposed(func, profile=baseline.profile)
    selection = decomposed.selection
    print(f"forward branches: {selection.forward_branches}")
    for candidate in selection.candidates:
        print(
            f"  converted {candidate.block}: bias={candidate.stats.bias:.2f} "
            f"predictability={candidate.stats.predictability:.2f} "
            f"(gap {candidate.stats.exposed_predictability:+.2f})"
        )
    transform = decomposed.transform.transforms[0]
    print(
        f"  pushed-down slice: {transform.pushed_down} insts, "
        f"hoisted {transform.hoisted_not_taken}+{transform.hoisted_taken} "
        f"insts, {transform.temps_used} temps"
    )
    print(f"  static code size: +{decomposed.transform.pisc:.1f}%")

    print("\n== transformed hot region (predict/resolve form) ==")
    start = decomposed.program.labels["s0A"]
    end = decomposed.program.labels["tail"]
    print(decomposed.program.disassemble(start, end - start))

    print("\n== simulating on the Table 1 4-wide in-order ==")
    outcome = quick_comparison(func, max_instructions=2_000_000)
    base, dec = outcome.baseline, outcome.decomposed
    print(f"baseline:   {base.cycles:>8} cycles  IPC {base.ipc:.2f}")
    print(f"decomposed: {dec.cycles:>8} cycles  IPC {dec.ipc:.2f}")
    print(f"speedup:    {outcome.speedup_percent:.1f}%")
    print(
        f"resolve mispredicts: {dec.stats.resolve_mispredicts}"
        f"/{dec.stats.resolves} "
        f"(correction code repaired each one)"
    )
    same = base.memory_snapshot() == dec.memory_snapshot()
    print(f"architectural results identical: {same}")


if __name__ == "__main__":
    main()
