#!/usr/bin/env python3
"""Section 5.3 in miniature: how predictor quality changes the win.

Runs one hard-to-predict benchmark (astar) against the predictor ladder
(bimodal -> gshare -> hybrid -> TAGE -> ISL-TAGE), reporting baseline
misprediction rate and the decomposed-branch speedup at each rung.  The
paper's observation: the transformation gets *more* valuable as predictors
improve (~0.3% speedup per 1% misprediction-rate reduction).

Run:  python examples/predictor_ladder.py [benchmark]
"""

import sys

from repro.analysis import render_table
from repro.experiments import RunConfig
from repro.experiments.sensitivity import run as run_sensitivity


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "astar"
    config = RunConfig(iterations=500)
    result = run_sensitivity(benchmarks=(benchmark,), config=config)

    rows = [
        [p.predictor, f"{p.mispredict_rate:.2f}", f"{p.speedup:.2f}"]
        for p in result.points
    ]
    print(
        render_table(
            ["predictor", "baseline mispredict %", "speedup %"],
            rows,
            title=f"Predictor ladder on {benchmark}",
        )
    )
    print(
        f"\nfitted slope: {result.slope(benchmark):+.3f}% speedup per 1% "
        f"misprediction-rate reduction (paper: ~+0.3%)"
    )


if __name__ == "__main__":
    main()
